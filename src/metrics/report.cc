#include "src/metrics/report.h"

#include <cstdio>
#include <ostream>

#include "src/dev/disk_driver.h"
#include "src/fs/filesystem.h"

namespace ikdp {

double IdleFraction(const Kernel& kernel, SimTime elapsed) {
  if (elapsed <= 0) {
    return 1.0;
  }
  const CpuSystem::Stats& s = const_cast<Kernel&>(kernel).cpu().stats();
  const SimDuration busy = s.process_work + s.context_switch + s.interrupt_work;
  return 1.0 - static_cast<double>(busy) / static_cast<double>(elapsed);
}

void PrintMachineReport(std::ostream& os, Kernel& kernel) {
  char line[256];
  const SimTime now = kernel.sim()->Now();
  const CpuSystem::Stats& cpu = kernel.cpu().stats();
  const BufferCache::Stats& cache = kernel.cache().stats();
  const SpliceEngine::Stats& splice = kernel.splice_engine().stats();
  const Kernel::Stats& sys = kernel.stats();

  os << "=== machine report @ " << FormatDuration(now) << " ===\n";
  std::snprintf(line, sizeof(line),
                "cpu:    process %s, switch %s (%llu), interrupt %s (%llu), idle %.1f%%\n",
                FormatDuration(cpu.process_work).c_str(),
                FormatDuration(cpu.context_switch).c_str(),
                static_cast<unsigned long long>(cpu.switches),
                FormatDuration(cpu.interrupt_work).c_str(),
                static_cast<unsigned long long>(cpu.interrupts),
                100.0 * IdleFraction(kernel, now));
  os << line;
  std::snprintf(line, sizeof(line),
                "sys:    %llu syscalls, %llu sync + %llu async splices\n",
                static_cast<unsigned long long>(sys.syscalls),
                static_cast<unsigned long long>(sys.splices_sync),
                static_cast<unsigned long long>(sys.splices_async));
  os << line;
  if (TraceLog* trace = kernel.cpu().trace()) {
    std::snprintf(line, sizeof(line), "trace:  %llu events, %llu dropped\n",
                  static_cast<unsigned long long>(trace->total()),
                  static_cast<unsigned long long>(trace->dropped()));
    os << line;
  }
  const uint64_t lookups = cache.hits + cache.misses;
  std::snprintf(line, sizeof(line),
                "cache:  %d bufs, %llu hits / %llu misses (%.1f%% hit), %llu victim flushes "
                "(%llu write errors, %llu lost), %llu transient headers\n",
                kernel.cache().nbufs(), static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                lookups > 0 ? 100.0 * static_cast<double>(cache.hits) /
                                  static_cast<double>(lookups)
                            : 0.0,
                static_cast<unsigned long long>(cache.delwri_flushes),
                static_cast<unsigned long long>(cache.delwri_write_errors),
                static_cast<unsigned long long>(cache.delwri_data_lost),
                static_cast<unsigned long long>(cache.transient_allocs));
  os << line;
  std::snprintf(line, sizeof(line), "splice: %llu started, %llu completed, %lld bytes moved\n",
                static_cast<unsigned long long>(splice.splices_started),
                static_cast<unsigned long long>(splice.splices_completed),
                static_cast<long long>(splice.total_bytes));
  os << line;
  // iostat-style per-disk lines for mounted filesystems whose device has a
  // real scheduler underneath (RAM disks have none).
  for (FileSystem* fs : kernel.Mounts()) {
    auto* drv = dynamic_cast<DiskDriver*>(fs->dev());
    if (drv == nullptr) {
      continue;
    }
    const DiskModel::Stats& m = drv->disk().stats();
    std::snprintf(line, sizeof(line),
                  "disk:   %s (%s): %llu requests (%llu r / %llu w), %llu coalesced, "
                  "%llu sort passes, depth %llu/%llu, busy %s, %llu errors\n",
                  fs->name().c_str(), drv->Name(),
                  static_cast<unsigned long long>(drv->stats().requests),
                  static_cast<unsigned long long>(m.reads),
                  static_cast<unsigned long long>(m.writes),
                  static_cast<unsigned long long>(m.coalesced),
                  static_cast<unsigned long long>(m.queue_sort_passes),
                  static_cast<unsigned long long>(drv->stats().max_queue_depth),
                  static_cast<unsigned long long>(m.max_queue_depth),
                  FormatDuration(m.busy_time).c_str(),
                  static_cast<unsigned long long>(m.errors));
    os << line;
    // Fault-injection detail, only when the plan (or hook) actually fired —
    // a clean run keeps its report identical to the pre-fault layout.
    if (m.errors > 0 || m.latency_spikes > 0) {
      std::snprintf(line, sizeof(line),
                    "faults: %s: %llu transient, %llu permanent, %llu enospc, %llu "
                    "latency spikes\n",
                    fs->name().c_str(),
                    static_cast<unsigned long long>(m.faults_transient),
                    static_cast<unsigned long long>(m.faults_permanent),
                    static_cast<unsigned long long>(m.enospc_errors),
                    static_cast<unsigned long long>(m.latency_spikes));
      os << line;
    }
  }
}

void PrintLinkReport(std::ostream& os, const std::string& name, const NetworkLink& link) {
  char line[256];
  const NetworkLink::Stats& s = link.stats();
  std::snprintf(line, sizeof(line),
                "link:   %s: %llu frames (%lld payload bytes), busy %s, %llu dropped, "
                "%llu lost, %llu jittered\n",
                name.c_str(), static_cast<unsigned long long>(s.frames_sent),
                static_cast<long long>(s.payload_bytes), FormatDuration(s.busy_time).c_str(),
                static_cast<unsigned long long>(s.frames_dropped),
                static_cast<unsigned long long>(s.frames_lost),
                static_cast<unsigned long long>(s.frames_jittered));
  os << line;
}

}  // namespace ikdp
