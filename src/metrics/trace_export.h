// Machine-readable exports of the tracing/telemetry layer.
//
// ExportChromeTrace serializes a TraceLog snapshot as Chrome trace-event
// JSON (the {"traceEvents": [...]} format), loadable in Perfetto or
// chrome://tracing.  The paired kinds documented in src/sim/trace.h become
// duration slices (syscalls, disk transfers) and async spans (splices);
// everything else becomes instant events.  Timestamps are microseconds with
// nanosecond precision kept in the fraction.
//
// ExportRegistryJson serializes a MetricsRegistry under the stable schema
// id "ikdp.telemetry.v1":
//
//   { "schema": "ikdp.telemetry.v1",
//     "counters": { "<name>": <int>, ... },
//     "histograms": { "<name>": { "count", "sum", "min", "max",
//                                 "p50", "p90", "p99",
//                                 "buckets": [ {"lo","hi","count"}, ... ] } } }
//
// ParseJson is a minimal self-contained JSON reader — just enough for tests
// and benches to round-trip the exports without external dependencies.

#ifndef SRC_METRICS_TRACE_EXPORT_H_
#define SRC_METRICS_TRACE_EXPORT_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/sim/trace.h"

namespace ikdp {

inline constexpr const char* kTelemetrySchema = "ikdp.telemetry.v1";

// Escapes `s` for inclusion inside a JSON string literal (quotes,
// backslashes, and control characters).  Every string this module writes —
// event names, counter keys, device tags — goes through here; emitters
// elsewhere that hand-build JSON should too, so a device named
// `rz56"\evil` can never produce unparseable output.
std::string JsonEscape(const std::string& s);

void ExportChromeTrace(const TraceLog& log, std::ostream& os);

// `extra_sections`, when non-empty, is pre-rendered JSON of the form
// `"key":{...},"key2":[...]` spliced into the top-level object after
// "histograms" — how the span layer (src/metrics/span_trace.h) adds its
// optional "spans"/"attribution" sections without this module depending on
// it.  Callers are responsible for the rendering being valid JSON.
void ExportRegistryJson(const MetricsRegistry& registry, std::ostream& os,
                        const std::string& extra_sections = "");

// --- minimal JSON reader (for round-trip validation) ---

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                // kArray
  std::map<std::string, JsonValue> members;    // kObject

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;
};

// Parses `text` into `*out`.  Returns false (and leaves *out unspecified)
// on malformed input or trailing garbage.
bool ParseJson(const std::string& text, JsonValue* out);

}  // namespace ikdp

#endif  // SRC_METRICS_TRACE_EXPORT_H_
