// Log2-bucketed latency histograms and a named-metric registry.
//
// LatencyHistogram is the classic biolat shape: bucket i >= 1 counts values
// in [2^(i-1), 2^i) nanoseconds, bucket 0 counts zeros.  Adding a sample is
// a handful of integer ops, so the telemetry collector can feed histograms
// online from the trace observer without perturbing an experiment (the
// simulated clock never sees any of this).
//
// MetricsRegistry unifies the scattered per-subsystem Stats structs behind
// one enumerable namespace: integer counters set by sampling
// (CaptureKernelCounters in telemetry.h) and histograms fed online.  Names
// are dotted paths ("disk.service_time.srcfs"); enumeration order is the
// name order (std::map), so exports are deterministic.

#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace ikdp {

class LatencyHistogram {
 public:
  // 64 buckets cover the full non-negative int64 range: bucket 0 holds
  // zeros, bucket 63 holds everything from 2^62 up.
  static constexpr int kBuckets = 64;

  void Add(int64_t value_ns);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  // min/max of the recorded samples; 0 when empty.
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }
  double Mean() const { return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  uint64_t bucket_count(int i) const { return buckets_[i]; }

  // Inclusive lower / exclusive upper bound of bucket i.
  static int64_t BucketLo(int i);
  static int64_t BucketHi(int i);

  // Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  // Deterministic and conservative: the true quantile is <= the returned
  // value.  Returns 0 when empty.
  int64_t Quantile(double q) const;

  // ASCII bar chart, one line per non-empty bucket (bpftrace style).
  void Print(std::ostream& os) const;

 private:
  static int BucketOf(int64_t value_ns);

  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

class MetricsRegistry {
 public:
  // Sets (overwrites) a named integer counter.
  void SetCounter(const std::string& name, int64_t value) { counters_[name] = value; }

  // Returns the counter's value, or 0 if it was never set.
  int64_t GetCounter(const std::string& name) const;
  bool HasCounter(const std::string& name) const { return counters_.count(name) > 0; }

  // Get-or-create a histogram by name.  The pointer stays valid for the
  // registry's lifetime (std::map nodes do not move).
  LatencyHistogram* Histogram(const std::string& name) { return &histograms_[name]; }

  // Deterministic (name-ordered) enumeration for exporters.
  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, LatencyHistogram>& histograms() const { return histograms_; }

  // Human-readable dump of every counter and histogram.
  void Print(std::ostream& os) const;

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace ikdp

#endif  // SRC_METRICS_HISTOGRAM_H_
