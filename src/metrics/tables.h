// Reproduction of the paper's evaluation tables.
//
// Table 1 — "CPU Availability Factors (Copying 8 MB File)": slowdown of the
// CPU-bound test program under CP and SCP per disk type, the improvement
// factor I = F_cp / F_scp, and the percentage CPU-availability improvement
// (I - 1) x 100.
//
// Table 2 — "Mean Throughput Measurements (Copying 8 MB File)": SCP and CP
// throughput in KB/s per disk type and the percentage improvement, measured
// with the test program disabled ("maximum attainable throughput ... assuming
// an otherwise idle CPU").
//
// Each printer runs the six underlying experiments on fresh machines and
// prints our measured values next to the paper's published ones.  The
// paper's Table 2 rows for the real disks are not fully legible in the
// surviving text; the paper states the improvement there is "minor", which
// is recorded as the qualitative expectation.

#ifndef SRC_METRICS_TABLES_H_
#define SRC_METRICS_TABLES_H_

#include <iosfwd>
#include <vector>

#include "src/metrics/experiment.h"

namespace ikdp {

struct Table1Row {
  DiskKind disk;
  // Paper values (Section 6.2 narrative: test program runs at 50-60% of the
  // IDLE rate under CP and 70-80% under SCP).
  double paper_f_cp;
  double paper_f_scp;
  // Measured.
  ExperimentResult cp;
  ExperimentResult scp;

  double MeasuredImprovement() const { return cp.slowdown / scp.slowdown; }
  double PaperImprovement() const { return paper_f_cp / paper_f_scp; }
};

struct Table2Row {
  DiskKind disk;
  // Paper values; < 0 marks "not legible in the surviving text".
  double paper_scp_kbs;
  double paper_cp_kbs;
  ExperimentResult cp;
  ExperimentResult scp;

  double MeasuredImprovementPct() const {
    return (scp.throughput_kbs / cp.throughput_kbs - 1.0) * 100.0;
  }
};

// Runs the experiments behind each table.  `file_bytes` defaults to the
// paper's 8 MB; tests use smaller files for speed.
std::vector<Table1Row> RunTable1(int64_t file_bytes = 8 << 20);
std::vector<Table2Row> RunTable2(int64_t file_bytes = 8 << 20);

void PrintTable1(std::ostream& os, const std::vector<Table1Row>& rows);
void PrintTable2(std::ostream& os, const std::vector<Table2Row>& rows);

}  // namespace ikdp

#endif  // SRC_METRICS_TABLES_H_
