// Span derivation and per-request exports over the kspan layer.
//
// The kernel mints REAL spans at request boundaries (client requests, splice
// streams, ring ops) and stamps every TraceRecord with the cursor's span
// (src/sim/kspan.h).  This module turns those raw materials into the
// per-request views the aggregate telemetry cannot provide:
//
//  * SpanTraceBuilder — a TraceLog observer that derives CHILD spans from
//    the documented begin/end record pairs (syscalls, run-queue waits, disk
//    transfers, splice chunk reads, UDP interface occupancy) plus point
//    spans for bread hits/misses and flow-control refills.  Derived spans
//    are minted into the same collector the kernel uses, parented to the
//    span the begin record carried, so they nest under the request that
//    caused them.  Ring ops are NOT derived: the ring mints real "aio.op"
//    spans itself.
//
//  * BuildRequestBreakdowns — joins the collector's span trees with the
//    CpuSystem attribution ledger into one row per root (request) span:
//    wall latency plus attributed CPU split by (charge bucket, subsystem).
//
//  * ExportFoldedStacks — flame-graph folded-stack lines ("a;b;c value"),
//    one per (span path, bucket:subsystem) with attributed nanoseconds as
//    the value.  Feed to any flamegraph.pl-compatible renderer.
//
//  * ExportSpanChromeTrace — the collector's spans as Chrome trace-event
//    async spans, loadable in Perfetto alongside ExportChromeTrace output.
//
// Everything here is host-side analysis: attaching the builder or running
// the exporters never advances the simulated clock.

#ifndef SRC_METRICS_SPAN_TRACE_H_
#define SRC_METRICS_SPAN_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/kern/cpu.h"
#include "src/sim/kspan.h"
#include "src/sim/trace.h"

namespace ikdp {

class SpanTraceBuilder {
 public:
  // Derived spans are minted into `collector` (normally the one attached via
  // AttachKspan, so real and derived spans share one tree).
  explicit SpanTraceBuilder(KspanCollector* collector) : collector_(collector) {}

  SpanTraceBuilder(const SpanTraceBuilder&) = delete;
  SpanTraceBuilder& operator=(const SpanTraceBuilder&) = delete;

  // Installs this builder as an additional observer on `log` (coexists with
  // the telemetry collector's set_observer slot).  The builder must outlive
  // the log.
  void Attach(TraceLog* log);

  // Feeds one record; public so tests can drive the pairing directly.
  void Observe(const TraceRecord& rec);

  // Count of derived spans by name ("syscall", "disk.xfer", ...).
  const std::map<std::string, uint64_t>& derived() const { return derived_; }

  // Begin records whose end has not arrived yet.
  size_t PendingIntervals() const {
    return syscalls_.size() + runnable_.size() + disk_.size() + splice_reads_.size() +
           udp_tx_.size();
  }

 private:
  struct Pending {
    SimTime start = 0;
    SpanId parent = kNoSpan;
  };

  // Mints a closed interval span [p.start, end] under p.parent.
  void Emit(const char* name, const Pending& p, SimTime end, int64_t arg, int64_t result,
            bool error);
  // Mints a zero-duration point span at `t`.
  void Point(const char* name, SimTime t, SpanId parent, int64_t arg);

  KspanCollector* collector_;
  std::map<std::string, uint64_t> derived_;

  std::map<int64_t, Pending> syscalls_;                          // pid
  std::map<int64_t, Pending> runnable_;                          // pid
  std::map<std::pair<std::string, int64_t>, Pending> disk_;      // (device, serial)
  std::map<std::pair<int64_t, int64_t>, Pending> splice_reads_;  // (serial, chunk)
  std::map<int64_t, Pending> udp_tx_;                            // datagram serial
};

// One request's worth of the attribution ledger: the root span's wall
// interval plus every charge attributed to a span in its tree, keyed
// "bucket/subsystem" ("process/process", "interrupt/disk", ...).
struct RequestBreakdown {
  SpanId root = kNoSpan;
  const char* name = "";
  int64_t arg = 0;
  SimTime start = 0;
  SimTime end = -1;  // -1 while open
  int64_t result = 0;
  bool error = false;
  SimDuration cpu_total = 0;
  std::map<std::string, SimDuration> cpu;

  SimDuration Latency() const { return end >= 0 ? end - start : 0; }
};

// Human-readable name of a ChargeBucket ("process", "switch", "interrupt",
// "softclock").
const char* ChargeBucketName(CpuSystem::ChargeBucket b);

// One breakdown per ROOT span in the collector, in mint order.  Charges
// whose span is unknown to the collector are ignored here (they show up as
// "untracked" in the folded-stack export).
std::vector<RequestBreakdown> BuildRequestBreakdowns(
    const KspanCollector& collector, const std::map<CpuSystem::ChargeKey, SimDuration>& attribution);

// Folded-stack lines: "root;child;...;bucket:subsystem <ns>", aggregated and
// name-ordered.  Charges on spans the collector does not know (including
// kNoSpan) fold under "untracked".  Non-positive aggregates are skipped.
void ExportFoldedStacks(const KspanCollector& collector,
                        const std::map<CpuSystem::ChargeKey, SimDuration>& attribution,
                        std::ostream& os);

// Chrome trace-event JSON of every span as an async slice (cat "kspan");
// open spans emit only their begin event.  Loadable in Perfetto.
void ExportSpanChromeTrace(const KspanCollector& collector, std::ostream& os);

// Renders the optional "spans"/"attribution" sections of the extended
// ikdp.telemetry.v1 document — pass the result as ExportRegistryJson's
// `extra_sections`.  "spans" carries the collector's lifecycle totals and a
// per-name span census; "attribution" is the exact CPU mirror, one entry per
// (bucket, subsystem, span) with attributed nanoseconds.
std::string RenderSpanSections(const KspanCollector& collector,
                               const std::map<CpuSystem::ChargeKey, SimDuration>& attribution);

}  // namespace ikdp

#endif  // SRC_METRICS_SPAN_TRACE_H_
