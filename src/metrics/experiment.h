// The experiment harness for the paper's evaluation (Section 6).
//
// One call builds a fresh machine modelled on the paper's configuration —
// DECstation 5000/200 costs, a 3.2 MB buffer cache, hz = 256, and a pair of
// identical disks of the chosen type, each with its own filesystem — places
// an 8 MB source file on the first disk, and copies it to the second with
// either cp (read/write) or scp (splice), optionally while the CPU-bound
// test program runs.
//
// Reported metrics map onto the paper's tables:
//  * slowdown F = elapsed / (test ops completed x op cost): how much slower
//    the test program ran than in the IDLE environment (Table 1);
//  * throughput = bytes / elapsed (Table 2, measured with the test program
//    disabled).
//
// Every run verifies the destination file's bytes against the source pattern
// before reporting, so a throughput number can never come from a broken
// copy.

#ifndef SRC_METRICS_EXPERIMENT_H_
#define SRC_METRICS_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/sim/trace.h"
#include "src/splice/splice_engine.h"

namespace ikdp {

class Kernel;

enum class DiskKind { kRam, kRz56, kRz58 };

const char* DiskKindName(DiskKind k);

struct ExperimentConfig {
  DiskKind disk = DiskKind::kRam;
  int64_t file_bytes = 8 << 20;  // the paper's 8 MB representative case
  bool use_splice = false;       // scp vs cp
  bool with_test_program = true; // Table 1 vs Table 2 mode
  CostConfig costs = DecStation5000Costs();
  SpliceOptions splice_options{};
  int cache_bufs = 400;  // 3.2 MB of 8 KB buffers
  int hz = 256;
  SimDuration test_op_cost = Milliseconds(1);
  int64_t cp_chunk = 8192;

  // Optional observability taps.  `trace` (when non-null) is attached to
  // the machine before the run — recording never advances simulated time,
  // so results are identical with or without it.  `inspect` runs after the
  // copy verifies, while the kernel is still alive, so callers can sample
  // per-subsystem stats (e.g. CaptureKernelCounters) that the plain result
  // struct does not carry.
  TraceLog* trace = nullptr;
  std::function<void(Kernel&)> inspect;
};

struct ExperimentResult {
  ExperimentConfig config;
  bool ok = false;           // copy completed and contents verified
  int64_t bytes = 0;
  double elapsed_s = 0;
  double throughput_kbs = 0;  // KB/s, paper units

  // Test-program metrics (with_test_program runs only).
  int64_t test_ops = 0;
  double slowdown = 0;  // F: >= 1.0

  // Machine-level accounting over the copy interval.
  CpuSystem::Stats cpu;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t splice_transients = 0;
  // Fraction of the run the CPU sat idle, from the accounting identity
  // process_work + context_switch + interrupt_work + idle == elapsed.
  // Always in [0, 1]; the harness asserts non-negativity every run.
  double idle_fraction = 0;
};

// Runs one copy experiment on a fresh machine.
ExperimentResult RunCopyExperiment(const ExperimentConfig& config);

// Formats a one-line summary (for harness logs).
std::string Summary(const ExperimentResult& r);

}  // namespace ikdp

#endif  // SRC_METRICS_EXPERIMENT_H_
