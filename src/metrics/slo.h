// Online tail-latency SLO monitoring for request-serving workloads.
//
// SloMonitor tracks every in-flight request from arrival to completion:
//
//  * completions feed a LatencyHistogram, so p50/p99/p999 are available
//    online at any point during a run (the histogram is log2-bucketed; the
//    reported quantiles are conservative upper bounds, src/metrics/histogram.h);
//  * goodput is bytes delivered by successful requests over the observation
//    window (first arrival to last completion);
//  * a simulated-time stall watchdog flags requests that have made no
//    progress for longer than a threshold — the descriptor-leak/wedged-
//    stream detector the fault-injection suite runs against every cell.
//
// The monitor is driven by explicit calls from the workload (arrival,
// progress, completion); it is host-side bookkeeping only and never touches
// the simulated clock.

#ifndef SRC_METRICS_SLO_H_
#define SRC_METRICS_SLO_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "src/kern/ctx.h"
#include "src/metrics/histogram.h"
#include "src/sim/time.h"

namespace ikdp {

// A point-in-time summary of the monitor's view.
struct SloReport {
  uint64_t completed = 0;
  uint64_t errors = 0;   // completions reporting failure
  uint64_t open = 0;     // arrived, not yet completed
  uint64_t stall_flags = 0;  // watchdog flaggings (a request can flag once)
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  int64_t p999_ns = 0;
  int64_t max_ns = 0;
  int64_t bytes = 0;         // delivered by successful completions
  double goodput_bps = 0.0;  // bytes over the observation window
  SimTime window_start = 0;
  SimTime window_end = 0;
};

class SloMonitor {
 public:
  // A request that has reported no progress for `stall_threshold` of
  // simulated time is flagged by CheckStalls.
  explicit SloMonitor(SimDuration stall_threshold) : stall_threshold_(stall_threshold) {}

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  // The monitor is fed from whatever context observes the event — arrival
  // events, delivery interrupts, server process code — and never blocks, so
  // the feed methods are callable from any context.

  // Request `id` arrived at `t`.  Ids must be unique among open requests.
  IKDP_CTX_ANY void OnRequestStart(uint64_t id, SimTime t);

  // Request `id` made forward progress (bytes moved, state advanced) at `t`.
  // Resets its watchdog; unknown ids are ignored (progress may race a
  // completion that already retired the id).
  IKDP_CTX_ANY void OnRequestProgress(uint64_t id, SimTime t);

  // Request `id` completed at `t` having delivered `bytes`; `error` marks a
  // failed completion (its latency still counts — a failed request was
  // still latency someone observed).  Unknown ids are ignored.
  IKDP_CTX_ANY void OnRequestEnd(uint64_t id, SimTime t, int64_t bytes, bool error);

  // The watchdog: returns ids open at `now` whose last progress is older
  // than the stall threshold, flagging each at most once.  Deterministic
  // (id order).
  IKDP_CTX_ANY std::vector<uint64_t> CheckStalls(SimTime now);

  const LatencyHistogram& latency() const { return latency_; }
  size_t open() const { return open_.size(); }

  SloReport Report(SimTime now) const;

  // One-line human-readable summary ("n=... p50=...ms p99=...ms ...").
  void PrintSummary(std::ostream& os, SimTime now) const;

 private:
  struct Open {
    SimTime start = 0;
    SimTime last_progress = 0;
    bool flagged = false;  // already reported by CheckStalls
  };

  SimDuration stall_threshold_;
  // Fed from every context (see the method comments above): the same
  // logically-concurrent sharing as the CpuSystem ledger.
  std::map<uint64_t, Open> open_ IKDP_GUARDED_BY(any);
  LatencyHistogram latency_ IKDP_GUARDED_BY(any);
  uint64_t completed_ IKDP_GUARDED_BY(any) = 0;
  uint64_t errors_ IKDP_GUARDED_BY(any) = 0;
  uint64_t stall_flags_ IKDP_GUARDED_BY(any) = 0;
  int64_t bytes_ IKDP_GUARDED_BY(any) = 0;
  SimTime first_start_ IKDP_GUARDED_BY(any) = -1;
  SimTime last_end_ IKDP_GUARDED_BY(any) = 0;
};

}  // namespace ikdp

#endif  // SRC_METRICS_SLO_H_
