// Online telemetry: trace records in, latency histograms out.
//
// TelemetryCollector installs itself as a TraceLog observer and pairs
// begin/end records (the keys documented in src/sim/trace.h) into interval
// samples as they happen, so latencies survive ring eviction:
//
//   disk.service_time.<device>   kDiskDispatch -> kDiskComplete
//   splice.chunk_latency         kSpliceRead   -> kSpliceChunk
//   syscall.latency.<name>       kSyscallEnter -> kSyscallExit
//   cpu.runq_wait                kRunnable     -> kDispatch
//   aio.completion_latency       kRingOpSubmit -> kRingOpComplete
//
// kRingSqDepth records additionally feed the aio.sq_depth histogram (the
// unfinished-op count sampled after every submission batch).
//
// Everything runs on the host side of the simulation boundary: observing a
// record never advances the simulated clock, so a traced run and an
// untraced run produce identical simulated results.
//
// CaptureKernelCounters samples the kernel's scattered Stats structs (CPU,
// syscalls, buffer cache, splice engine, and each mounted disk's driver +
// scheduler) into the registry's counter namespace, giving exporters one
// enumerable view of the whole machine.

#ifndef SRC_METRICS_TELEMETRY_H_
#define SRC_METRICS_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/hw/link.h"
#include "src/metrics/histogram.h"
#include "src/os/kernel.h"
#include "src/sim/trace.h"

namespace ikdp {

class TelemetryCollector {
 public:
  explicit TelemetryCollector(MetricsRegistry* registry) : registry_(registry) {}

  TelemetryCollector(const TelemetryCollector&) = delete;
  TelemetryCollector& operator=(const TelemetryCollector&) = delete;

  // Installs this collector as `log`'s observer.  The collector must
  // outlive the log (or a later set_observer call).
  void Attach(TraceLog* log);

  // Feeds one record; public so tests can drive the pairing logic directly.
  void Observe(const TraceRecord& rec);

  // Begin records whose end has not arrived yet (unfinished intervals).
  size_t PendingIntervals() const {
    return runnable_.size() + syscalls_.size() + disk_.size() + splice_reads_.size() +
           ring_ops_.size();
  }

 private:
  MetricsRegistry* registry_;

  std::map<int64_t, SimTime> runnable_;                          // pid -> kRunnable time
  std::map<int64_t, std::pair<SimTime, std::string>> syscalls_;  // pid -> (enter, name)
  std::map<std::pair<std::string, int64_t>, SimTime> disk_;      // (device, serial)
  std::map<std::pair<int64_t, int64_t>, SimTime> splice_reads_;  // (serial, chunk)
  std::map<std::pair<int64_t, int64_t>, SimTime> ring_ops_;      // (ring, cookie)
};

// Samples every kernel Stats struct into `registry` counters under stable
// dotted names ("cpu.switches", "cache.delwri_write_errors",
// "disk.<mount>.coalesced", ...).  Idempotent: sampling twice overwrites.
// Includes trace.dropped_events (ring-buffer evictions of the attached
// TraceLog; 0 when none is attached) and the per-disk fault-injection
// counters (errors, ENOSPC hits, transient/permanent split, latency spikes).
void CaptureKernelCounters(MetricsRegistry* registry, Kernel& kernel);

// Samples one network link's Stats under "net.<name>.*" ("net.<name>.frames_dropped",
// ...).  Separate from CaptureKernelCounters because links live outside the
// Kernel (the workload wires sockets to links directly).
void CaptureLinkCounters(MetricsRegistry* registry, const std::string& name,
                         const NetworkLink& link);

}  // namespace ikdp

#endif  // SRC_METRICS_TELEMETRY_H_
