#include "src/metrics/trace_export.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace ikdp {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Chrome trace timestamps are microseconds; keep nanosecond precision in
// the fraction.
std::string Micros(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  // Emits one trace event.  `extra` is spliced in raw (pre-rendered JSON
  // fields, e.g. "\"dur\":12.5" or "\"id\":\"3\""); pass "" for none.
  void Emit(const std::string& name, const char* cat, const char* ph, SimTime ts, int64_t tid,
            const std::string& extra, int64_t arg_a, int64_t arg_b) {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    os_ << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat << "\",\"ph\":\"" << ph
        << "\",\"ts\":" << Micros(ts) << ",\"pid\":1,\"tid\":" << tid;
    if (!extra.empty()) {
      os_ << "," << extra;
    }
    os_ << ",\"args\":{\"a\":" << arg_a << ",\"b\":" << arg_b << "}}";
  }

  void Meta(const std::string& json) {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    os_ << json;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void ExportChromeTrace(const TraceLog& log, std::ostream& os) {
  const std::vector<TraceRecord> records = log.Snapshot();

  // Thread layout: tid 0 is machine-wide events, process events use
  // tid = pid, each disk gets its own lane so dispatch/complete slices
  // nest per device.
  std::map<std::string, int64_t> device_tids;
  std::map<int64_t, bool> pids_seen;
  for (const TraceRecord& r : records) {
    switch (r.kind) {
      case TraceKind::kDispatch:
      case TraceKind::kRunnable:
      case TraceKind::kSleep:
      case TraceKind::kSyscallEnter:
      case TraceKind::kSyscallExit:
        pids_seen[r.a] = true;
        break;
      case TraceKind::kDiskDispatch:
      case TraceKind::kDiskComplete:
        if (device_tids.count(r.tag) == 0) {
          device_tids[r.tag] = 1000 + static_cast<int64_t>(device_tids.size());
        }
        break;
      default:
        break;
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  EventWriter w(os);

  w.Meta("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"ikdp kernel\"}}");
  w.Meta("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"machine\"}}");
  // Metas are assembled as std::string: a fixed snprintf buffer would
  // truncate a long (escaped) device name mid-token and corrupt the JSON.
  for (const auto& [pid, seen] : pids_seen) {
    (void)seen;
    const std::string p = std::to_string(pid);
    w.Meta("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" + p +
           ",\"args\":{\"name\":\"pid " + p + "\"}}");
  }
  for (const auto& [dev, tid] : device_tids) {
    w.Meta("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"args\":{\"name\":\"disk " + JsonEscape(dev) + "\"}}");
  }

  auto async_id = [](int64_t serial) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "\"id\":\"%lld\"", static_cast<long long>(serial));
    return std::string(buf);
  };
  // Ring-op spans pair on (ring id, cookie); the composite id keeps them
  // distinct from splice-serial spans and from each other across rings.
  auto ring_id = [](int64_t ring, int64_t cookie) {
    return "\"id\":\"r" + std::to_string(ring) + "." + std::to_string(cookie) + "\"";
  };

  for (const TraceRecord& r : records) {
    const std::string tag = r.tag;
    switch (r.kind) {
      // --- duration slices on per-process lanes ---
      case TraceKind::kSyscallEnter:
        w.Emit(tag.empty() ? "syscall" : tag, "syscall", "B", r.time, r.a, "", r.a, r.b);
        break;
      case TraceKind::kSyscallExit:
        w.Emit(tag.empty() ? "syscall" : tag, "syscall", "E", r.time, r.a, "", r.a, r.b);
        break;
      // --- scheduler instants on the process lane ---
      case TraceKind::kDispatch:
      case TraceKind::kRunnable:
      case TraceKind::kSleep:
        w.Emit(TraceKindName(r.kind), "sched", "i", r.time, r.a, "\"s\":\"t\"", r.a, r.b);
        break;
      // --- interrupts: complete events with duration, machine lane ---
      case TraceKind::kInterrupt: {
        char dur[48];
        std::snprintf(dur, sizeof(dur), "\"dur\":%s", Micros(r.a).c_str());
        w.Emit("interrupt", "irq", "X", r.time, 0, dur, r.a, r.b);
        break;
      }
      // --- disk transfers: slices on the device lane ---
      case TraceKind::kDiskDispatch:
        w.Emit("xfer #" + std::to_string(r.a), "disk", "B", r.time, device_tids[tag], "", r.a,
               r.b);
        break;
      case TraceKind::kDiskComplete:
        w.Emit("xfer #" + std::to_string(r.a), "disk", "E", r.time, device_tids[tag], "", r.a,
               r.b);
        break;
      // --- splices: async spans keyed by descriptor serial ---
      case TraceKind::kSpliceStart:
        w.Emit("splice #" + std::to_string(r.a), "splice", "b", r.time, 0, async_id(r.a), r.a,
               r.b);
        break;
      case TraceKind::kSpliceDone:
        w.Emit("splice #" + std::to_string(r.a), "splice", "e", r.time, 0, async_id(r.a), r.a,
               r.b);
        break;
      case TraceKind::kSpliceRead:
      case TraceKind::kSpliceChunk:
      case TraceKind::kSpliceLowWater:
      case TraceKind::kSpliceRefill:
        w.Emit(std::string("splice #") + std::to_string(r.a) + " " + TraceKindName(r.kind),
               "splice", "n", r.time, 0, async_id(r.a), r.a, r.b);
        break;
      // --- splice ring ops: async spans keyed by (ring, cookie) ---
      case TraceKind::kRingOpSubmit:
        w.Emit("aio r" + std::to_string(r.a) + " op " + std::to_string(r.b), "aio", "b", r.time,
               0, ring_id(r.a, r.b), r.a, r.b);
        break;
      case TraceKind::kRingOpComplete:
        w.Emit("aio r" + std::to_string(r.a) + " op " + std::to_string(r.b), "aio", "e", r.time,
               0, ring_id(r.a, r.b), r.a, r.b);
        break;
      // --- ring batch/reaper activity: machine-lane instants ---
      case TraceKind::kRingSubmit:
      case TraceKind::kRingSqDepth:
      case TraceKind::kRingReap:
      case TraceKind::kRingOverflow:
      case TraceKind::kRingCancel:
        w.Emit(std::string(TraceKindName(r.kind)) + " r" + std::to_string(r.a), "aio", "i",
               r.time, 0, "\"s\":\"g\"", r.a, r.b);
        break;
      // --- everything else: machine-lane instants ---
      default:
        w.Emit(tag.empty() ? TraceKindName(r.kind)
                           : std::string(TraceKindName(r.kind)) + " " + tag,
               "kernel", "i", r.time, 0, "\"s\":\"g\"", r.a, r.b);
        break;
    }
  }
  os << "\n]}\n";
}

void ExportRegistryJson(const MetricsRegistry& registry, std::ostream& os,
                        const std::string& extra_sections) {
  os << "{\n\"schema\":\"" << kTelemetrySchema << "\",\n\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    os << (first ? "\n" : ",\n") << "\"" << JsonEscape(name) << "\":" << value;
    first = false;
  }
  os << "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    os << (first ? "\n" : ",\n") << "\"" << JsonEscape(name) << "\":{";
    os << "\"count\":" << h.count() << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
       << ",\"max\":" << h.max() << ",\"p50\":" << h.Quantile(0.5)
       << ",\"p90\":" << h.Quantile(0.9) << ",\"p99\":" << h.Quantile(0.99) << ",\"buckets\":[";
    bool bfirst = true;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      if (h.bucket_count(i) == 0) {
        continue;
      }
      os << (bfirst ? "" : ",") << "{\"lo\":" << LatencyHistogram::BucketLo(i)
         << ",\"hi\":" << LatencyHistogram::BucketHi(i) << ",\"count\":" << h.bucket_count(i)
         << "}";
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << "\n}";
  if (!extra_sections.empty()) {
    os << ",\n" << extra_sections;
  }
  os << "\n}\n";
}

// --- minimal JSON reader ---

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!Value(out)) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool Value(JsonValue* out) {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object(out);
      case '[':
        return Array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return String(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return Number(out);
    }
  }

  bool Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!Value(&v)) {
        return false;
      }
      out->members[key] = std::move(v);
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue v;
      if (!Value(&v)) {
        return false;
      }
      out->items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        return false;
      }
      char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            return false;
          }
          // Keep it simple: decode BMP code points to UTF-8.
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xc0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            *out += static_cast<char>(0xe0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool Number(JsonValue* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out) { return JsonParser(text).Parse(out); }

}  // namespace ikdp
