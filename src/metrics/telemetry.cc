#include "src/metrics/telemetry.h"

#include <algorithm>

#include "src/dev/disk_driver.h"
#include "src/fs/filesystem.h"
#include "src/kern/lock.h"
#include "src/sim/lockdep.h"

namespace ikdp {

void TelemetryCollector::Attach(TraceLog* log) {
  log->set_observer([this](const TraceRecord& rec) { Observe(rec); });
}

void TelemetryCollector::Observe(const TraceRecord& rec) {
  switch (rec.kind) {
    case TraceKind::kRunnable:
      runnable_[rec.a] = rec.time;
      break;
    case TraceKind::kDispatch: {
      auto it = runnable_.find(rec.a);
      if (it != runnable_.end()) {
        registry_->Histogram("cpu.runq_wait")->Add(rec.time - it->second);
        runnable_.erase(it);
      }
      break;
    }
    case TraceKind::kSyscallEnter:
      syscalls_[rec.a] = {rec.time, rec.tag};
      break;
    case TraceKind::kSyscallExit: {
      auto it = syscalls_.find(rec.a);
      if (it != syscalls_.end()) {
        registry_->Histogram("syscall.latency." + it->second.second)
            ->Add(rec.time - it->second.first);
        syscalls_.erase(it);
      }
      break;
    }
    case TraceKind::kDiskDispatch:
      disk_[{rec.tag, rec.a}] = rec.time;
      break;
    case TraceKind::kDiskComplete: {
      auto it = disk_.find({rec.tag, rec.a});
      if (it != disk_.end()) {
        registry_->Histogram(std::string("disk.service_time.") + rec.tag)
            ->Add(rec.time - it->second);
        disk_.erase(it);
      }
      break;
    }
    case TraceKind::kSpliceRead:
      splice_reads_[{rec.a, rec.b}] = rec.time;
      break;
    case TraceKind::kSpliceChunk: {
      auto it = splice_reads_.find({rec.a, rec.b});
      if (it != splice_reads_.end()) {
        registry_->Histogram("splice.chunk_latency")->Add(rec.time - it->second);
        splice_reads_.erase(it);
      }
      break;
    }
    case TraceKind::kRingOpSubmit:
      ring_ops_[{rec.a, rec.b}] = rec.time;
      break;
    case TraceKind::kRingOpComplete: {
      auto it = ring_ops_.find({rec.a, rec.b});
      if (it != ring_ops_.end()) {
        registry_->Histogram("aio.completion_latency")->Add(rec.time - it->second);
        ring_ops_.erase(it);
      }
      break;
    }
    case TraceKind::kRingSqDepth:
      registry_->Histogram("aio.sq_depth")->Add(rec.b);
      break;
    case TraceKind::kKopExec:
      // b = operator execution cost for one chunk (ns).
      registry_->Histogram("kop.exec_cost")->Add(rec.b);
      break;
    default:
      break;
  }
}

void CaptureKernelCounters(MetricsRegistry* registry, Kernel& kernel) {
  const CpuSystem::Stats& cpu = kernel.cpu().stats();
  registry->SetCounter("cpu.process_work_ns", cpu.process_work);
  registry->SetCounter("cpu.context_switch_ns", cpu.context_switch);
  registry->SetCounter("cpu.interrupt_work_ns", cpu.interrupt_work);
  registry->SetCounter("cpu.switches", static_cast<int64_t>(cpu.switches));
  registry->SetCounter("cpu.interrupts", static_cast<int64_t>(cpu.interrupts));

  // Ring-buffer evictions of the attached trace: nonzero means snapshots
  // (and anything built from them) are truncated.  Emitted even with no log
  // attached so the counter namespace is stable.
  TraceLog* trace = kernel.cpu().trace();
  registry->SetCounter("trace.dropped_events",
                       trace != nullptr ? static_cast<int64_t>(trace->dropped()) : 0);
  registry->SetCounter("trace.total_events",
                       trace != nullptr ? static_cast<int64_t>(trace->total()) : 0);

  const Kernel::Stats& sys = kernel.stats();
  registry->SetCounter("sys.syscalls", static_cast<int64_t>(sys.syscalls));
  registry->SetCounter("sys.splices_sync", static_cast<int64_t>(sys.splices_sync));
  registry->SetCounter("sys.splices_async", static_cast<int64_t>(sys.splices_async));

  const BufferCache::Stats& cache = kernel.cache().stats();
  registry->SetCounter("cache.hits", static_cast<int64_t>(cache.hits));
  registry->SetCounter("cache.misses", static_cast<int64_t>(cache.misses));
  registry->SetCounter("cache.delwri_flushes", static_cast<int64_t>(cache.delwri_flushes));
  registry->SetCounter("cache.delwri_write_errors",
                       static_cast<int64_t>(cache.delwri_write_errors));
  registry->SetCounter("cache.delwri_data_lost", static_cast<int64_t>(cache.delwri_data_lost));
  registry->SetCounter("cache.transient_allocs", static_cast<int64_t>(cache.transient_allocs));
  registry->SetCounter("cache.async_read_fails", static_cast<int64_t>(cache.async_read_fails));

  const SpliceEngine::Stats& splice = kernel.splice_engine().stats();
  registry->SetCounter("splice.started", static_cast<int64_t>(splice.splices_started));
  registry->SetCounter("splice.completed", static_cast<int64_t>(splice.splices_completed));
  registry->SetCounter("splice.total_bytes", splice.total_bytes);

  // Operator counters are emitted unconditionally (zeros when no program
  // ever ran) so the kop.* namespace is stable across configurations.
  registry->SetCounter("kop.programs_loaded", static_cast<int64_t>(sys.kop_loads));
  registry->SetCounter("kop.load_failures", static_cast<int64_t>(sys.kop_load_failures));
  registry->SetCounter("kop.attaches", static_cast<int64_t>(sys.kop_attaches));
  registry->SetCounter("kop.chunks_in", static_cast<int64_t>(splice.kop_chunks_in));
  registry->SetCounter("kop.chunks_dropped", static_cast<int64_t>(splice.kop_chunks_dropped));
  registry->SetCounter("kop.chunks_rejected", static_cast<int64_t>(splice.kop_chunks_rejected));
  registry->SetCounter("kop.bytes_in", splice.kop_bytes_in);
  registry->SetCounter("kop.bytes_out", splice.kop_bytes_out);
  registry->SetCounter("kop.exec_ns", splice.kop_exec_time);

  // Ring counters are emitted even when no ring exists (all zeros), so the
  // counter namespace is stable across configurations.
  SpliceRing::Stats aio;
  int nrings = 0;
  for (SpliceRing* ring : kernel.Rings()) {
    ++nrings;
    const SpliceRing::Stats& r = ring->stats();
    aio.submitted += r.submitted;
    aio.completed += r.completed;
    aio.harvested += r.harvested;
    aio.cancelled += r.cancelled;
    aio.eagain_returns += r.eagain_returns;
    aio.overflows += r.overflows;
    aio.reaps += r.reaps;
    aio.sq_depth_max = std::max(aio.sq_depth_max, r.sq_depth_max);
  }
  registry->SetCounter("aio.rings", nrings);
  registry->SetCounter("aio.submitted", static_cast<int64_t>(aio.submitted));
  registry->SetCounter("aio.completed", static_cast<int64_t>(aio.completed));
  registry->SetCounter("aio.harvested", static_cast<int64_t>(aio.harvested));
  registry->SetCounter("aio.cancelled", static_cast<int64_t>(aio.cancelled));
  registry->SetCounter("aio.eagain_returns", static_cast<int64_t>(aio.eagain_returns));
  registry->SetCounter("aio.overflows", static_cast<int64_t>(aio.overflows));
  registry->SetCounter("aio.reaps", static_cast<int64_t>(aio.reaps));
  registry->SetCounter("aio.sq_depth_max", aio.sq_depth_max);

  // Lock-discipline counters (docs/klock.md).  The acquisition counters are
  // always on; the order-graph numbers come from the lockdep validator and
  // are zeros when IKDP_LOCKDEP is off — emitted anyway so the lock.*
  // namespace is stable across configurations.
  const LockStats& locks = GlobalLockStats();
  registry->SetCounter("lock.spin_acquisitions", static_cast<int64_t>(locks.spin_acquisitions));
  registry->SetCounter("lock.sleep_acquisitions",
                       static_cast<int64_t>(locks.sleep_acquisitions));
  registry->SetCounter("lock.sleep_contention", static_cast<int64_t>(locks.sleep_contention));
  registry->SetCounter("lock.max_held", locks.max_held);
  registry->SetCounter("lock.max_held_rank", locks.max_held_rank);
  registry->SetCounter("lock.order_edges", static_cast<int64_t>(Lockdep().edges().size()));
  registry->SetCounter("lock.violations", static_cast<int64_t>(Lockdep().violations().size()));

  for (FileSystem* fs : kernel.Mounts()) {
    auto* drv = dynamic_cast<DiskDriver*>(fs->dev());
    if (drv == nullptr) {
      continue;  // RAM disks have no scheduler underneath
    }
    const std::string prefix = "disk." + fs->name() + ".";
    const DiskDriver::Stats& d = drv->stats();
    registry->SetCounter(prefix + "requests", static_cast<int64_t>(d.requests));
    registry->SetCounter(prefix + "interrupts", static_cast<int64_t>(d.interrupts));
    registry->SetCounter(prefix + "sort_passes", static_cast<int64_t>(d.sort_passes));
    registry->SetCounter(prefix + "max_queue_depth", static_cast<int64_t>(d.max_queue_depth));
    const DiskModel::Stats& m = drv->disk().stats();
    registry->SetCounter(prefix + "reads", static_cast<int64_t>(m.reads));
    registry->SetCounter(prefix + "writes", static_cast<int64_t>(m.writes));
    registry->SetCounter(prefix + "read_cache_hits", static_cast<int64_t>(m.read_cache_hits));
    registry->SetCounter(prefix + "seeks", static_cast<int64_t>(m.seeks));
    registry->SetCounter(prefix + "errors", static_cast<int64_t>(m.errors));
    registry->SetCounter(prefix + "enospc_errors", static_cast<int64_t>(m.enospc_errors));
    registry->SetCounter(prefix + "faults_transient",
                         static_cast<int64_t>(m.faults_transient));
    registry->SetCounter(prefix + "faults_permanent",
                         static_cast<int64_t>(m.faults_permanent));
    registry->SetCounter(prefix + "latency_spikes", static_cast<int64_t>(m.latency_spikes));
    registry->SetCounter(prefix + "coalesced", static_cast<int64_t>(m.coalesced));
    registry->SetCounter(prefix + "queue_sort_passes",
                         static_cast<int64_t>(m.queue_sort_passes));
    registry->SetCounter(prefix + "hw_max_queue_depth",
                         static_cast<int64_t>(m.max_queue_depth));
    registry->SetCounter(prefix + "bytes_read", m.bytes_read);
    registry->SetCounter(prefix + "bytes_written", m.bytes_written);
    registry->SetCounter(prefix + "busy_time_ns", m.busy_time);
  }
}

void CaptureLinkCounters(MetricsRegistry* registry, const std::string& name,
                         const NetworkLink& link) {
  const std::string prefix = "net." + name + ".";
  const NetworkLink::Stats& s = link.stats();
  registry->SetCounter(prefix + "frames_sent", static_cast<int64_t>(s.frames_sent));
  registry->SetCounter(prefix + "frames_dropped", static_cast<int64_t>(s.frames_dropped));
  registry->SetCounter(prefix + "frames_lost", static_cast<int64_t>(s.frames_lost));
  registry->SetCounter(prefix + "frames_jittered", static_cast<int64_t>(s.frames_jittered));
  registry->SetCounter(prefix + "payload_bytes", s.payload_bytes);
  registry->SetCounter(prefix + "busy_time_ns", s.busy_time);
}

}  // namespace ikdp
