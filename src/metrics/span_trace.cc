#include "src/metrics/span_trace.h"

#include <ostream>
#include <string>

#include "src/metrics/trace_export.h"

namespace ikdp {

void SpanTraceBuilder::Attach(TraceLog* log) {
  log->AddObserver([this](const TraceRecord& rec) { Observe(rec); });
}

void SpanTraceBuilder::Emit(const char* name, const Pending& p, SimTime end, int64_t arg,
                            int64_t result, bool error) {
  const SpanId id = collector_->Begin(p.start, name, p.parent, arg);
  collector_->End(end, id, result, error);
  ++derived_[name];
}

void SpanTraceBuilder::Point(const char* name, SimTime t, SpanId parent, int64_t arg) {
  const SpanId id = collector_->Begin(t, name, parent, arg);
  collector_->End(t, id);
  ++derived_[name];
}

void SpanTraceBuilder::Observe(const TraceRecord& rec) {
  switch (rec.kind) {
    case TraceKind::kSyscallEnter:
      syscalls_[rec.a] = {rec.time, rec.span};
      break;
    case TraceKind::kSyscallExit: {
      auto it = syscalls_.find(rec.a);
      if (it != syscalls_.end()) {
        Emit("syscall", it->second, rec.time, rec.a, 0, false);
        syscalls_.erase(it);
      }
      break;
    }
    case TraceKind::kRunnable:
      runnable_[rec.a] = {rec.time, rec.span};
      break;
    case TraceKind::kDispatch: {
      auto it = runnable_.find(rec.a);
      if (it != runnable_.end()) {
        Emit("sched.runq", it->second, rec.time, rec.a, 0, false);
        runnable_.erase(it);
      }
      break;
    }
    case TraceKind::kDiskDispatch:
      disk_[{rec.tag, rec.a}] = {rec.time, rec.span};
      break;
    case TraceKind::kDiskComplete: {
      auto it = disk_.find({rec.tag, rec.a});
      if (it != disk_.end()) {
        Emit("disk.xfer", it->second, rec.time, rec.a, rec.b, false);
        disk_.erase(it);
      }
      break;
    }
    case TraceKind::kSpliceRead:
      splice_reads_[{rec.a, rec.b}] = {rec.time, rec.span};
      break;
    case TraceKind::kSpliceChunk: {
      auto it = splice_reads_.find({rec.a, rec.b});
      if (it != splice_reads_.end()) {
        Emit("splice.chunk", it->second, rec.time, rec.b, 0, false);
        splice_reads_.erase(it);
      }
      break;
    }
    case TraceKind::kSpliceReadAbort: {
      // Teardown retracted this descriptor's outstanding reads: their
      // kSpliceChunk will never arrive.  Close every open read interval for
      // the serial as an errored span so the tree stays balanced.
      for (auto it = splice_reads_.begin(); it != splice_reads_.end();) {
        if (it->first.first == rec.a) {
          Emit("splice.chunk", it->second, rec.time, it->first.second, 0, true);
          it = splice_reads_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    case TraceKind::kUdpSend:
      udp_tx_[rec.a] = {rec.time, rec.span};
      break;
    case TraceKind::kUdpSent: {
      auto it = udp_tx_.find(rec.a);
      if (it != udp_tx_.end()) {
        Emit("net.tx", it->second, rec.time, rec.a, rec.b, false);
        udp_tx_.erase(it);
      }
      break;
    }
    case TraceKind::kBreadHit:
      Point("bread.hit", rec.time, rec.span, rec.a);
      break;
    case TraceKind::kBreadMiss:
      Point("bread.miss", rec.time, rec.span, rec.a);
      break;
    case TraceKind::kGetblkSleep:
      Point("getblk.sleep", rec.time, rec.span, rec.b);
      break;
    case TraceKind::kSpliceRefill:
      Point("splice.refill", rec.time, rec.span, rec.b);
      break;
    default:
      break;
  }
}

const char* ChargeBucketName(CpuSystem::ChargeBucket b) {
  switch (b) {
    case CpuSystem::ChargeBucket::kProcess:
      return "process";
    case CpuSystem::ChargeBucket::kSwitch:
      return "switch";
    case CpuSystem::ChargeBucket::kInterrupt:
      return "interrupt";
    case CpuSystem::ChargeBucket::kSoftclock:
      return "softclock";
    case CpuSystem::ChargeBucket::kKopProcess:
      return "kop.process";
    case CpuSystem::ChargeBucket::kKopInterrupt:
      return "kop.interrupt";
    case CpuSystem::ChargeBucket::kKopSoftclock:
      return "kop.softclock";
  }
  return "?";
}

std::vector<RequestBreakdown> BuildRequestBreakdowns(
    const KspanCollector& collector,
    const std::map<CpuSystem::ChargeKey, SimDuration>& attribution) {
  std::vector<RequestBreakdown> out;
  std::map<SpanId, size_t> slot;  // root id -> out index
  for (const SpanRecord& s : collector.spans()) {
    if (s.parent != kNoSpan) {
      continue;
    }
    RequestBreakdown r;
    r.root = s.id;
    r.name = s.name;
    r.arg = s.a;
    r.start = s.start;
    r.end = s.end;
    r.result = s.result;
    r.error = s.error;
    slot[s.id] = out.size();
    out.push_back(std::move(r));
  }
  for (const auto& [key, t] : attribution) {
    if (key.span == kNoSpan || !collector.Known(key.span)) {
      continue;
    }
    auto it = slot.find(collector.RootOf(key.span));
    if (it == slot.end()) {
      continue;
    }
    RequestBreakdown& r = out[it->second];
    const std::string subsystem = key.subsystem[0] != '\0' ? key.subsystem : "untagged";
    r.cpu[std::string(ChargeBucketName(key.bucket)) + "/" + subsystem] += t;
    r.cpu_total += t;
  }
  return out;
}

void ExportFoldedStacks(const KspanCollector& collector,
                        const std::map<CpuSystem::ChargeKey, SimDuration>& attribution,
                        std::ostream& os) {
  std::map<std::string, SimDuration> folded;
  for (const auto& [key, t] : attribution) {
    std::string path;
    if (key.span != kNoSpan && collector.Known(key.span)) {
      // Root-first span path: walk parents, then reverse by prepending.
      for (SpanId id = key.span; id != kNoSpan;) {
        const SpanRecord* s = collector.Find(id);
        if (s == nullptr) {
          break;
        }
        path = path.empty() ? std::string(s->name) : std::string(s->name) + ";" + path;
        id = s->parent;
      }
    }
    if (path.empty()) {
      path = "untracked";
    }
    path += ";";
    path += ChargeBucketName(key.bucket);
    path += ":";
    path += key.subsystem[0] != '\0' ? key.subsystem : "untagged";
    folded[path] += t;
  }
  for (const auto& [path, t] : folded) {
    if (t <= 0) {
      continue;  // a fully-refunded switch slice has no width to draw
    }
    os << path << " " << t << "\n";
  }
}

void ExportSpanChromeTrace(const KspanCollector& collector, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) {
      os << ",";
    }
    first = false;
  };
  for (const SpanRecord& s : collector.spans()) {
    // Async slices keyed by span id; Perfetto groups b/e pairs by (cat, id).
    comma();
    os << "{\"name\":\"" << JsonEscape(s.name) << "\",\"cat\":\"kspan\",\"ph\":\"b\",\"id\":"
       << s.id << ",\"pid\":1,\"tid\":1,\"ts\":" << s.start / 1000 << "."
       << s.start % 1000 << ",\"args\":{\"arg\":" << s.a << ",\"parent\":" << s.parent << "}}";
    if (s.open()) {
      continue;
    }
    comma();
    os << "{\"name\":\"" << JsonEscape(s.name) << "\",\"cat\":\"kspan\",\"ph\":\"e\",\"id\":"
       << s.id << ",\"pid\":1,\"tid\":1,\"ts\":" << s.end / 1000 << "." << s.end % 1000
       << ",\"args\":{\"result\":" << s.result << ",\"error\":" << (s.error ? "true" : "false")
       << "}}";
  }
  os << "]}\n";
}

std::string RenderSpanSections(const KspanCollector& collector,
                               const std::map<CpuSystem::ChargeKey, SimDuration>& attribution) {
  std::string out;
  out += "\"spans\":{";
  out += "\"begun\":" + std::to_string(collector.begun());
  out += ",\"ended\":" + std::to_string(collector.ended());
  out += ",\"bad_ends\":" + std::to_string(collector.bad_ends());
  out += ",\"open\":" + std::to_string(collector.open_count());
  std::map<std::string, uint64_t> census;
  for (const SpanRecord& s : collector.spans()) {
    ++census[s.name];
  }
  out += ",\"by_name\":{";
  bool first = true;
  for (const auto& [name, n] : census) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(n);
  }
  out += "}},\n\"attribution\":[";
  first = true;
  for (const auto& [key, t] : attribution) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"bucket\":\"";
    out += ChargeBucketName(key.bucket);
    out += "\",\"subsystem\":\"";
    out += JsonEscape(key.subsystem[0] != '\0' ? key.subsystem : "untagged");
    out += "\",\"span\":" + std::to_string(key.span);
    out += ",\"ns\":" + std::to_string(t) + "}";
  }
  out += "]";
  return out;
}

}  // namespace ikdp
