#include "src/metrics/slo.h"

#include <algorithm>
#include <ostream>

namespace ikdp {

void SloMonitor::OnRequestStart(uint64_t id, SimTime t) {
  open_[id] = Open{t, t, false};
  if (first_start_ < 0 || t < first_start_) {
    first_start_ = t;
  }
}

void SloMonitor::OnRequestProgress(uint64_t id, SimTime t) {
  auto it = open_.find(id);
  if (it == open_.end()) {
    return;
  }
  it->second.last_progress = t;
  it->second.flagged = false;  // progress clears a stall flag
}

void SloMonitor::OnRequestEnd(uint64_t id, SimTime t, int64_t bytes, bool error) {
  auto it = open_.find(id);
  if (it == open_.end()) {
    return;
  }
  latency_.Add(t - it->second.start);
  open_.erase(it);
  ++completed_;
  if (error) {
    ++errors_;
  } else {
    bytes_ += bytes;
  }
  last_end_ = std::max(last_end_, t);
}

std::vector<uint64_t> SloMonitor::CheckStalls(SimTime now) {
  std::vector<uint64_t> stalled;
  for (auto& [id, o] : open_) {
    if (!o.flagged && now - o.last_progress > stall_threshold_) {
      o.flagged = true;
      ++stall_flags_;
      stalled.push_back(id);
    }
  }
  return stalled;
}

SloReport SloMonitor::Report(SimTime now) const {
  SloReport r;
  r.completed = completed_;
  r.errors = errors_;
  r.open = open_.size();
  r.stall_flags = stall_flags_;
  r.p50_ns = latency_.Quantile(0.50);
  r.p99_ns = latency_.Quantile(0.99);
  r.p999_ns = latency_.Quantile(0.999);
  r.max_ns = latency_.max();
  r.bytes = bytes_;
  r.window_start = first_start_ >= 0 ? first_start_ : 0;
  r.window_end = last_end_ > 0 ? last_end_ : now;
  const SimDuration window = r.window_end - r.window_start;
  r.goodput_bps = window > 0 ? static_cast<double>(bytes_) * 1e9 / static_cast<double>(window)
                             : 0.0;
  return r;
}

void SloMonitor::PrintSummary(std::ostream& os, SimTime now) const {
  const SloReport r = Report(now);
  os << "slo: n=" << r.completed << " err=" << r.errors << " open=" << r.open
     << " stalls=" << r.stall_flags << " p50=" << static_cast<double>(r.p50_ns) / 1e6
     << "ms p99=" << static_cast<double>(r.p99_ns) / 1e6
     << "ms p999=" << static_cast<double>(r.p999_ns) / 1e6
     << "ms goodput=" << r.goodput_bps / 1e6 << "MB/s\n";
}

}  // namespace ikdp
