#include "src/metrics/experiment.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/dev/disk_driver.h"
#include "src/dev/ram_disk.h"
#include "src/fs/filesystem.h"
#include "src/hw/disk.h"
#include "src/metrics/report.h"
#include "src/os/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/programs.h"

namespace ikdp {

namespace {

uint8_t FilePattern(int64_t i) { return static_cast<uint8_t>((i * 2654435761u) >> 5 & 0xff); }

std::unique_ptr<BlockDevice> MakeDisk(DiskKind kind, CpuSystem* cpu, Simulator* sim,
                                      const char* role) {
  // The two disks of a run get distinct names ("RZ56.src" / "RZ56.dst"):
  // trace records tag transfers by device name, and identically-named
  // devices would collide in the (device, serial) pairing key and share a
  // lane in the exported Chrome trace.
  switch (kind) {
    case DiskKind::kRam:
      // "The ram disk driver uses 16MB of statically allocated memory."
      return std::make_unique<RamDisk>(cpu, 16ll << 20);
    case DiskKind::kRz56: {
      DiskParams p = Rz56Params();
      p.name += std::string(".") + role;
      return std::make_unique<DiskDriver>(cpu, sim, std::move(p));
    }
    case DiskKind::kRz58: {
      DiskParams p = Rz58Params();
      p.name += std::string(".") + role;
      return std::make_unique<DiskDriver>(cpu, sim, std::move(p));
    }
  }
  return nullptr;
}

}  // namespace

const char* DiskKindName(DiskKind k) {
  switch (k) {
    case DiskKind::kRam:
      return "RAM";
    case DiskKind::kRz56:
      return "RZ56";
    case DiskKind::kRz58:
      return "RZ58";
  }
  return "?";
}

ExperimentResult RunCopyExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.config = config;

  Simulator sim;
  Kernel kernel(&sim, config.costs, config.cache_bufs, config.hz);
  kernel.splice_options() = config.splice_options;
  if (config.trace != nullptr) {
    kernel.AttachTrace(config.trace);
  }

  std::unique_ptr<BlockDevice> src_dev = MakeDisk(config.disk, &kernel.cpu(), &sim, "src");
  std::unique_ptr<BlockDevice> dst_dev = MakeDisk(config.disk, &kernel.cpu(), &sim, "dst");
  FileSystem* src_fs = kernel.MountFs(src_dev.get(), "srcfs");
  FileSystem* dst_fs = kernel.MountFs(dst_dev.get(), "dstfs");

  // Pre-create the source file directly on the device: the measurement
  // starts with a cold read cache ("we ensured a read cache cold start
  // condition", Section 6.1).
  Inode* src_ip = src_fs->CreateFileInstant("big", config.file_bytes, FilePattern);
  if (src_ip == nullptr) {
    return result;
  }

  TestProgramState test_state;
  if (config.with_test_program) {
    kernel.Spawn("test", [&kernel, &config, &test_state](Process& p) -> Task<> {
      co_await TestProgram(kernel, p, config.test_op_cost, &test_state);
    });
  }

  CopyResult copy;
  const std::string src_path = "srcfs:big";
  const std::string dst_path = "dstfs:copy";
  kernel.Spawn(config.use_splice ? "scp" : "cp",
               [&kernel, &config, &copy, src_path, dst_path, &test_state](Process& p) -> Task<> {
                 if (config.use_splice) {
                   co_await ScpProgram(kernel, p, src_path, dst_path, &copy);
                 } else {
                   co_await CpProgram(kernel, p, src_path, dst_path, config.cp_chunk, &copy);
                 }
                 test_state.stop = true;
               });

  sim.Run();
  // Attribution closure is a hard gate for every experiment-backed bench,
  // not a report: a ledger whose per-span mirror drifts from the totals
  // invalidates every per-request number downstream, so die loudly even in
  // release builds (assert() is compiled out there).
  {
    std::string closure_err;
    if (!kernel.cpu().CheckAttributionClosure(&closure_err)) {
      std::fprintf(stderr, "FATAL: attribution closure violated: %s\n", closure_err.c_str());
      std::abort();
    }
  }
  if (!copy.ok || kernel.cpu().alive() != 0) {
    return result;
  }

  // Verify the destination byte-for-byte (after pushing residual delayed
  // metadata writes straight to the device).
  kernel.cache().FlushAllInstant();
  Inode* dst_ip = dst_fs->Lookup("copy");
  if (dst_ip == nullptr || dst_ip->size != config.file_bytes) {
    return result;
  }
  const std::vector<uint8_t> back = dst_fs->ReadFileInstant(dst_ip);
  for (int64_t i = 0; i < config.file_bytes; ++i) {
    if (back[static_cast<size_t>(i)] != FilePattern(i)) {
      return result;
    }
  }

  result.ok = true;
  result.bytes = copy.bytes;
  result.elapsed_s = copy.ElapsedSeconds();
  result.throughput_kbs = copy.ThroughputKbs();
  result.cpu = kernel.cpu().stats();
  result.cache_hits = kernel.cache().stats().hits;
  result.cache_misses = kernel.cache().stats().misses;
  result.splice_transients = kernel.cache().stats().transient_allocs;
  // The accounting identity is a run-level invariant: busy time charged to
  // processes, switches, and interrupts can never exceed elapsed time.  A
  // negative idle fraction means double-charged CPU somewhere — fail loudly
  // rather than publish numbers from a broken ledger.
  result.idle_fraction = IdleFraction(kernel, sim.Now());
  assert(result.idle_fraction >= 0.0 && result.idle_fraction <= 1.0);

  if (config.inspect) {
    config.inspect(kernel);
  }

  if (config.with_test_program) {
    result.test_ops = test_state.ops;
    // In the IDLE environment the test program completes exactly
    // elapsed / op_cost operations (no contention, no interrupts), so the
    // slowdown factor is elapsed / (ops x op_cost).
    const double ideal_ops = static_cast<double>(copy.end - copy.start) /
                             static_cast<double>(config.test_op_cost);
    result.slowdown = result.test_ops > 0
                          ? ideal_ops / static_cast<double>(result.test_ops)
                          : 0.0;
  }
  return result;
}

std::string Summary(const ExperimentResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-4s %-3s %s: %.0f KB/s, %.3f s, F=%.2f, ops=%lld, %s",
                DiskKindName(r.config.disk), r.config.use_splice ? "scp" : "cp",
                r.config.with_test_program ? "loaded" : "idle", r.throughput_kbs, r.elapsed_s,
                r.slowdown, static_cast<long long>(r.test_ops), r.ok ? "verified" : "FAILED");
  return buf;
}

}  // namespace ikdp
