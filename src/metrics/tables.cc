#include "src/metrics/tables.h"

#include <cstdio>
#include <ostream>

namespace ikdp {

namespace {

ExperimentResult Run(DiskKind disk, bool splice, bool loaded, int64_t file_bytes) {
  ExperimentConfig cfg;
  cfg.disk = disk;
  cfg.use_splice = splice;
  cfg.with_test_program = loaded;
  cfg.file_bytes = file_bytes;
  return RunCopyExperiment(cfg);
}

constexpr DiskKind kDisks[] = {DiskKind::kRam, DiskKind::kRz56, DiskKind::kRz58};

}  // namespace

std::vector<Table1Row> RunTable1(int64_t file_bytes) {
  std::vector<Table1Row> rows;
  for (DiskKind disk : kDisks) {
    Table1Row row;
    row.disk = disk;
    // Section 6.2: under CP the test program runs at 50% of IDLE on the RAM
    // disk and 60% on the SCSI disks; under SCP at 80% (RAM, RZ58) and 70%
    // (RZ56).
    switch (disk) {
      case DiskKind::kRam:
        row.paper_f_cp = 1.0 / 0.50;
        row.paper_f_scp = 1.0 / 0.80;
        break;
      case DiskKind::kRz56:
        row.paper_f_cp = 1.0 / 0.60;
        row.paper_f_scp = 1.0 / 0.70;
        break;
      case DiskKind::kRz58:
        row.paper_f_cp = 1.0 / 0.60;
        row.paper_f_scp = 1.0 / 0.80;
        break;
    }
    row.cp = Run(disk, /*splice=*/false, /*loaded=*/true, file_bytes);
    row.scp = Run(disk, /*splice=*/true, /*loaded=*/true, file_bytes);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table2Row> RunTable2(int64_t file_bytes) {
  std::vector<Table2Row> rows;
  for (DiskKind disk : kDisks) {
    Table2Row row;
    row.disk = disk;
    if (disk == DiskKind::kRam) {
      row.paper_scp_kbs = 3343;
      row.paper_cp_kbs = 1884;
    } else {
      row.paper_scp_kbs = -1;  // rows illegible; paper: "benefit ... is minor"
      row.paper_cp_kbs = -1;
    }
    row.cp = Run(disk, /*splice=*/false, /*loaded=*/false, file_bytes);
    row.scp = Run(disk, /*splice=*/true, /*loaded=*/false, file_bytes);
    rows.push_back(row);
  }
  return rows;
}

void PrintTable1(std::ostream& os, const std::vector<Table1Row>& rows) {
  char line[256];
  os << "Table 1: CPU Availability Factors (copying "
     << (rows.empty() ? 8 : rows[0].cp.config.file_bytes >> 20) << " MB file)\n";
  os << "  F = test-program slowdown vs IDLE; I = F_cp/F_scp; %% = (I-1)x100\n\n";
  std::snprintf(line, sizeof(line), "  %-5s | %-17s | %-17s | %-13s | %-13s | ok\n", "Disk",
                "F_cp  (paper)", "F_scp (paper)", "I  (paper)", "%  (paper)");
  os << line;
  os << "  ------+-------------------+-------------------+---------------+---------------+---\n";
  for (const Table1Row& r : rows) {
    std::snprintf(line, sizeof(line),
                  "  %-5s | %5.2f  (%5.2f)    | %5.2f  (%5.2f)    | %5.2f (%4.2f)  | %5.1f "
                  "(%4.0f)  | %s\n",
                  DiskKindName(r.disk), r.cp.slowdown, r.paper_f_cp, r.scp.slowdown,
                  r.paper_f_scp, r.MeasuredImprovement(), r.PaperImprovement(),
                  (r.MeasuredImprovement() - 1.0) * 100.0, (r.PaperImprovement() - 1.0) * 100.0,
                  r.cp.ok && r.scp.ok ? "y" : "FAIL");
    os << line;
  }
  os << "\n";
}

void PrintTable2(std::ostream& os, const std::vector<Table2Row>& rows) {
  char line[256];
  os << "Table 2: Mean Throughput Measurements (copying "
     << (rows.empty() ? 8 : rows[0].cp.config.file_bytes >> 20) << " MB file)\n\n";
  std::snprintf(line, sizeof(line), "  %-5s | %-21s | %-21s | %-15s | ok\n", "Disk",
                "SCP KB/s (paper)", "CP KB/s  (paper)", "%%-impr (paper)");
  os << line;
  os << "  ------+-----------------------+-----------------------+-----------------+---\n";
  for (const Table2Row& r : rows) {
    char scp_paper[32];
    char cp_paper[32];
    char pct_paper[32];
    if (r.paper_scp_kbs >= 0) {
      std::snprintf(scp_paper, sizeof(scp_paper), "%5.0f", r.paper_scp_kbs);
      std::snprintf(cp_paper, sizeof(cp_paper), "%5.0f", r.paper_cp_kbs);
      std::snprintf(pct_paper, sizeof(pct_paper), "%3.0f%%",
                    (r.paper_scp_kbs / r.paper_cp_kbs - 1.0) * 100.0);
    } else {
      std::snprintf(scp_paper, sizeof(scp_paper), "  n/a");
      std::snprintf(cp_paper, sizeof(cp_paper), "  n/a");
      std::snprintf(pct_paper, sizeof(pct_paper), "minor");
    }
    std::snprintf(line, sizeof(line),
                  "  %-5s | %7.0f  (%s)      | %7.0f  (%s)      | %5.1f%% (%s)  | %s\n",
                  DiskKindName(r.disk), r.scp.throughput_kbs, scp_paper, r.cp.throughput_kbs,
                  cp_paper, r.MeasuredImprovementPct(), pct_paper,
                  r.cp.ok && r.scp.ok ? "y" : "FAIL");
    os << line;
  }
  os << "\n";
}

}  // namespace ikdp
