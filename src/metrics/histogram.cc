#include "src/metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>

#include "src/sim/time.h"

namespace ikdp {

int LatencyHistogram::BucketOf(int64_t value_ns) {
  if (value_ns <= 0) {
    return 0;
  }
  // bit_width(v) = floor(log2(v)) + 1, so bucket i covers [2^(i-1), 2^i).
  return std::bit_width(static_cast<uint64_t>(value_ns));
}

int64_t LatencyHistogram::BucketLo(int i) { return i == 0 ? 0 : int64_t{1} << (i - 1); }

int64_t LatencyHistogram::BucketHi(int i) {
  if (i == 0) {
    return 1;
  }
  if (i >= kBuckets - 1) {
    return INT64_MAX;
  }
  return int64_t{1} << i;
}

void LatencyHistogram::Add(int64_t value_ns) {
  const int i = std::min(BucketOf(value_ns), kBuckets - 1);
  ++buckets_[i];
  if (count_ == 0) {
    min_ = max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  ++count_;
  sum_ += value_ns;
}

int64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank is 1-based: the q-quantile is the ceil(q * count)-th smallest.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.999999));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      if (i >= kBuckets - 1) {
        // The last bucket saturates (no true power-of-two upper bound).
        return max_;
      }
      // Conservative: report the bucket's upper bound (capped at the true
      // max, which is exact when the bucket is the last non-empty one).
      return std::min(BucketHi(i) - 1, max_);
    }
  }
  return max_;
}

void LatencyHistogram::Print(std::ostream& os) const {
  if (count_ == 0) {
    os << "  (empty)\n";
    return;
  }
  uint64_t peak = 0;
  for (uint64_t b : buckets_) {
    peak = std::max(peak, b);
  }
  int lo = 0;
  int hi = kBuckets - 1;
  while (lo < kBuckets && buckets_[lo] == 0) {
    ++lo;
  }
  while (hi >= 0 && buckets_[hi] == 0) {
    --hi;
  }
  char line[160];
  for (int i = lo; i <= hi; ++i) {
    const int width = peak > 0 ? static_cast<int>(40 * buckets_[i] / peak) : 0;
    std::snprintf(line, sizeof(line), "  [%10s, %10s) %8llu |%-40.*s|\n",
                  FormatDuration(BucketLo(i)).c_str(),
                  i >= kBuckets - 1 ? "inf" : FormatDuration(BucketHi(i)).c_str(),
                  static_cast<unsigned long long>(buckets_[i]), width,
                  "****************************************");
    os << line;
  }
  std::snprintf(line, sizeof(line), "  count %llu, avg %s, p50 %s, p99 %s, max %s\n",
                static_cast<unsigned long long>(count_), FormatDuration(static_cast<SimDuration>(Mean())).c_str(),
                FormatDuration(Quantile(0.5)).c_str(), FormatDuration(Quantile(0.99)).c_str(),
                FormatDuration(max()).c_str());
  os << line;
}

int64_t MetricsRegistry::GetCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Print(std::ostream& os) const {
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ":\n";
    h.Print(os);
  }
}

}  // namespace ikdp
