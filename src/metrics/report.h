// Machine-wide statistics report.
//
// Summarizes everything a Kernel can see — CPU accounting, syscall counts,
// buffer-cache behaviour, per-filesystem activity, splice engine totals —
// as a vmstat/iostat-style block of text.  Benches print it after a run;
// tests use it as a smoke check that accounting stays coherent.

#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <iosfwd>
#include <string>

#include "src/hw/link.h"
#include "src/os/kernel.h"

namespace ikdp {

// Prints the report for `kernel` at the current simulated time.  Includes a
// trace line (events written / dropped) when a TraceLog is attached and a
// per-disk fault line when injected faults fired.
void PrintMachineReport(std::ostream& os, Kernel& kernel);

// One iostat-style line for a network link.  Separate from the machine
// report because links live outside the Kernel (workloads wire sockets to
// links directly).
void PrintLinkReport(std::ostream& os, const std::string& name, const NetworkLink& link);

// The CPU accounting identity: process work + context switches + interrupt
// work must not exceed elapsed time (the remainder is idle).  Returns the
// idle fraction in [0, 1]; negative values indicate an accounting bug.
double IdleFraction(const Kernel& kernel, SimTime elapsed);

}  // namespace ikdp

#endif  // SRC_METRICS_REPORT_H_
