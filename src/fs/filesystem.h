// A 4.2BSD-FFS-flavoured filesystem, simplified to what the paper's data
// path exercises.
//
// Files are inodes ("gnodes" in Ultrix terminology) with 12 direct block
// pointers, one single-indirect and one double-indirect block; indirect
// blocks live on the device and travel through the buffer cache, so mapping
// a large file costs real (simulated) I/O when cold.  A flat root directory
// maps names to inodes.  The allocator prefers physically contiguous blocks,
// which is what makes sequential files benefit from the disk models'
// read-ahead caches.
//
// Two bmap flavours exist, as in the paper (Section 5.2.1):
//  * Bmap(..., alloc=true) — stock behaviour: a freshly allocated data block
//    is zero-filled through the cache and scheduled as a delayed write (the
//    overwrite that follows makes this wasted work);
//  * Bmap(..., alloc=true, for_splice=true) — "a special version of bmap()
//    ... which avoids delayed-writes of freshly allocated, zero-filled
//    blocks": the block is allocated and mapped, nothing is written.
//
// Read() implements the 4.2BSD read path: bread the block (with one-block
// read-ahead, breada) and copy to the user buffer, charging copyout per
// block.  Write() implements the delayed-write path: whole-block overwrites
// skip the read (getblk), partial writes read-modify-write, and blocks are
// released with bdwrite.  Fsync() pushes the device's delayed writes and
// waits, matching the cp experiment's write-through setup.

#ifndef SRC_FS_FILESYSTEM_H_
#define SRC_FS_FILESYSTEM_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/buf/buf.h"
#include "src/buf/buffer_cache.h"
#include "src/kern/cpu.h"
#include "src/kern/ctx.h"
#include "src/sim/task.h"

namespace ikdp {

inline constexpr int kDirectBlocks = 12;
// 8 KB block of 32-bit entries.
inline constexpr int64_t kPtrsPerBlock = kBlockSize / 4;

struct Inode {
  int64_t ino = -1;
  int64_t size = 0;
  std::array<int64_t, kDirectBlocks> direct{};  // 0 = unallocated
  int64_t indirect = 0;                         // single-indirect block
  int64_t dindirect = 0;                        // double-indirect block

  int64_t SizeBlocks() const { return (size + kBlockSize - 1) / kBlockSize; }
};

class FileSystem {
 public:
  // Mounts on `dev`, using `cache` for all block I/O.  Data blocks start
  // after a small metadata reserve.
  FileSystem(CpuSystem* cpu, BufferCache* cache, BlockDevice* dev, std::string name);

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  BlockDevice* dev() { return dev_; }
  BufferCache* cache() { return cache_; }
  const std::string& name() const { return name_; }

  // --- directory operations (in-memory metadata, small CPU charge) ---

  // Creates an empty file.  Returns nullptr if the name exists.
  Inode* Create(const std::string& fname);
  Inode* Lookup(const std::string& fname);
  // Frees the file's blocks and directory entry.
  bool Remove(const std::string& fname);

  // Frees the file's blocks and resets its size to zero (open O_TRUNC).
  // Callers are responsible for not holding cached buffers of the freed
  // blocks across reallocation (flush or use fresh names in experiments).
  void Truncate(Inode* ip) { FreeInodeBlocks(ip); }

  // --- block mapping ---

  // Maps logical block `lbn` of `ip` to a physical block number, reading
  // indirect blocks through the cache.  Returns 0 if unmapped and !alloc,
  // and -1 if an indirect block could not be read (or written back) off the
  // device — an unreadable map must never be mistaken for a hole, and with
  // alloc it must not be overwritten with freshly scribbled pointers.
  // With alloc, allocates data (and indirect) blocks; stock allocation
  // zero-fills fresh data blocks via delayed writes unless `for_splice`.
  IKDP_CTX_PROCESS Task<int64_t> Bmap(Process& p, Inode* ip, int64_t lbn, bool alloc,
                                      bool for_splice = false);

  // Maps blocks [0, nblocks) of `ip`, allocating as needed; the splice setup
  // path ("the entire list of all physical block numbers comprising the
  // source file is determined by successive calls to bmap()").
  IKDP_CTX_PROCESS Task<std::vector<int64_t>> MapRange(Process& p, Inode* ip, int64_t nblocks,
                                                       bool alloc, bool for_splice);

  // --- the read()/write() data path ---

  // Reads up to `n` bytes at `off` into `out` (resized to what was read).
  // Charges copyout per block moved.
  IKDP_CTX_PROCESS Task<int64_t> Read(Process& p, Inode* ip, int64_t off, int64_t n,
                                      std::vector<uint8_t>* out);

  // Writes `n` bytes at `off`, extending the file; delayed writes.  Charges
  // copyin per block moved.
  IKDP_CTX_PROCESS Task<int64_t> Write(Process& p, Inode* ip, int64_t off, const uint8_t* data,
                                       int64_t n);

  // Flushes delayed writes for this filesystem's device and waits.
  IKDP_CTX_PROCESS Task<> Fsync(Process& p, Inode* ip);

  // --- untimed helpers for experiment setup and verification ---

  // Creates `fname` of `nbytes` whose contents are fill(i) at byte i,
  // writing straight to the device (no simulated time).
  Inode* CreateFileInstant(const std::string& fname, int64_t nbytes,
                           const std::function<uint8_t(int64_t)>& fill);

  // Reads the whole file straight from the device (no simulated time),
  // bypassing the cache; pair with BufferCache::FlushDev for verification.
  std::vector<uint8_t> ReadFileInstant(Inode* ip);

  // Sequential read-ahead depth in blocks (4.2BSD reads one block ahead;
  // the paper's future work contemplates deeper buffering strategies —
  // swept by bench/ablate_readahead).  0 disables read-ahead.
  void set_read_ahead_blocks(int n) { read_ahead_blocks_ = n; }
  int read_ahead_blocks() const { return read_ahead_blocks_; }

  int64_t FreeBlocks() const { return free_blocks_; }
  int64_t TotalDataBlocks() const { return total_blocks_ - first_data_block_; }

  struct Stats {
    uint64_t bmap_calls = 0;
    uint64_t indirect_reads = 0;
    uint64_t blocks_allocated = 0;
    uint64_t zero_fill_writes = 0;  // stock-bmap zero-fill delayed writes
  };
  const Stats& stats() const { return stats_; }

 private:
  // Allocates a physical block near the allocation cursor.  Returns 0 when
  // the device is full.
  int64_t AllocBlock();
  void FreeBlock(int64_t pbn);
  void FreeInodeBlocks(Inode* ip);

  // Reads/writes a 32-bit entry in an on-device indirect block, through the
  // cache.  ReadPtr returns -1 if the block read errored; WritePtr returns
  // false (storing nothing) if it did — updating one pointer in a block
  // whose other pointers never arrived would corrupt the map.
  IKDP_CTX_PROCESS Task<int64_t> ReadPtr(Process& p, int64_t pbn, int64_t index);
  IKDP_CTX_PROCESS Task<bool> WritePtr(Process& p, int64_t pbn, int64_t index, int64_t value);

  // Zero-fills a freshly allocated data block as a delayed write (the stock
  // bmap behaviour splice's special bmap avoids).
  IKDP_CTX_PROCESS Task<> ZeroFill(Process& p, int64_t pbn);

  // Untimed physical-block mapper used by the Instant helpers; allocates
  // with zeroed metadata I/O.
  int64_t BmapInstant(Inode* ip, int64_t lbn, bool alloc);

  CpuSystem* cpu_;
  BufferCache* cache_;
  BlockDevice* dev_;
  std::string name_;

  int64_t total_blocks_;
  int64_t first_data_block_;
  std::vector<bool> used_;
  int64_t free_blocks_;
  int64_t alloc_cursor_;

  int read_ahead_blocks_ = 1;
  std::map<std::string, int64_t> root_dir_;
  std::vector<std::unique_ptr<Inode>> inodes_;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_FS_FILESYSTEM_H_
