#include "src/fs/filesystem.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace ikdp {

namespace {

// Indirect-block entries are 32-bit little-endian physical block numbers.
int64_t LoadPtr(const std::vector<uint8_t>& block, int64_t index) {
  uint32_t v = 0;
  std::memcpy(&v, block.data() + index * 4, 4);
  return static_cast<int64_t>(v);
}

void StorePtr(std::vector<uint8_t>* block, int64_t index, int64_t value) {
  const uint32_t v = static_cast<uint32_t>(value);
  std::memcpy(block->data() + index * 4, &v, 4);
}

}  // namespace

FileSystem::FileSystem(CpuSystem* cpu, BufferCache* cache, BlockDevice* dev, std::string name)
    : cpu_(cpu),
      cache_(cache),
      dev_(dev),
      name_(std::move(name)),
      total_blocks_(dev->CapacityBlocks()),
      first_data_block_(16),
      used_(static_cast<size_t>(total_blocks_), false),
      free_blocks_(total_blocks_ - first_data_block_),
      alloc_cursor_(first_data_block_) {
  assert(total_blocks_ > first_data_block_);
  for (int64_t i = 0; i < first_data_block_; ++i) {
    used_[static_cast<size_t>(i)] = true;
  }
}

// --- allocation ---

int64_t FileSystem::AllocBlock() {
  if (free_blocks_ == 0) {
    return 0;
  }
  int64_t pbn = alloc_cursor_;
  for (int64_t scanned = 0; scanned < total_blocks_; ++scanned) {
    if (pbn >= total_blocks_) {
      pbn = first_data_block_;
    }
    if (!used_[static_cast<size_t>(pbn)]) {
      used_[static_cast<size_t>(pbn)] = true;
      --free_blocks_;
      alloc_cursor_ = pbn + 1;
      ++stats_.blocks_allocated;
      return pbn;
    }
    ++pbn;
  }
  return 0;
}

void FileSystem::FreeBlock(int64_t pbn) {
  if (pbn < first_data_block_ || pbn >= total_blocks_) {
    return;
  }
  assert(used_[static_cast<size_t>(pbn)]);
  used_[static_cast<size_t>(pbn)] = false;
  ++free_blocks_;
}

void FileSystem::FreeInodeBlocks(Inode* ip) {
  for (int64_t pbn : ip->direct) {
    if (pbn != 0) {
      FreeBlock(pbn);
    }
  }
  auto free_indirect = [this](int64_t ind) {
    if (ind == 0) {
      return;
    }
    const std::vector<uint8_t> blk = dev_->PeekBlock(ind);
    for (int64_t i = 0; i < kPtrsPerBlock; ++i) {
      const int64_t pbn = LoadPtr(blk, i);
      if (pbn != 0) {
        FreeBlock(pbn);
      }
    }
    FreeBlock(ind);
  };
  if (ip->dindirect != 0) {
    const std::vector<uint8_t> blk = dev_->PeekBlock(ip->dindirect);
    for (int64_t i = 0; i < kPtrsPerBlock; ++i) {
      free_indirect(LoadPtr(blk, i));
    }
    FreeBlock(ip->dindirect);
  }
  free_indirect(ip->indirect);
  ip->direct.fill(0);
  ip->indirect = 0;
  ip->dindirect = 0;
  ip->size = 0;
}

// --- directory ---

Inode* FileSystem::Create(const std::string& fname) {
  if (root_dir_.count(fname) > 0) {
    return nullptr;
  }
  auto ip = std::make_unique<Inode>();
  ip->ino = static_cast<int64_t>(inodes_.size());
  Inode* out = ip.get();
  inodes_.push_back(std::move(ip));
  root_dir_[fname] = out->ino;
  return out;
}

Inode* FileSystem::Lookup(const std::string& fname) {
  auto it = root_dir_.find(fname);
  if (it == root_dir_.end()) {
    return nullptr;
  }
  return inodes_[static_cast<size_t>(it->second)].get();
}

bool FileSystem::Remove(const std::string& fname) {
  auto it = root_dir_.find(fname);
  if (it == root_dir_.end()) {
    return false;
  }
  FreeInodeBlocks(inodes_[static_cast<size_t>(it->second)].get());
  root_dir_.erase(it);
  return true;
}

// --- indirect-block access through the cache ---

Task<int64_t> FileSystem::ReadPtr(Process& p, int64_t pbn, int64_t index) {
  ++stats_.indirect_reads;
  Buf* b = co_await cache_->Bread(p, dev_, pbn);
  if (b->Has(kBufError)) {
    cache_->Brelse(b);
    co_return -1;  // unreadable indirect block, not a hole
  }
  const int64_t value = LoadPtr(*b->data, index);
  cache_->Brelse(b);
  co_return value;
}

Task<bool> FileSystem::WritePtr(Process& p, int64_t pbn, int64_t index, int64_t value) {
  Buf* b = co_await cache_->Bread(p, dev_, pbn);
  if (b->Has(kBufError)) {
    cache_->Brelse(b);
    co_return false;
  }
  StorePtr(b->data.get(), index, value);
  cache_->Bdwrite(p, b);
  co_return true;
}

Task<> FileSystem::ZeroFill(Process& p, int64_t pbn) {
  ++stats_.zero_fill_writes;
  Buf* b = co_await cache_->GetBlk(p, dev_, pbn);
  std::fill(b->data->begin(), b->data->end(), 0);
  co_await cpu_->Use(p, cpu_->costs().BcopyTime(kBlockSize));
  cache_->Bdwrite(p, b);
}

// --- bmap ---

Task<int64_t> FileSystem::Bmap(Process& p, Inode* ip, int64_t lbn, bool alloc, bool for_splice) {
  ++stats_.bmap_calls;
  co_await cpu_->Use(p, cpu_->costs().bmap_op);
  assert(lbn >= 0);

  if (lbn < kDirectBlocks) {
    int64_t pbn = ip->direct[static_cast<size_t>(lbn)];
    if (pbn == 0 && alloc) {
      pbn = AllocBlock();
      ip->direct[static_cast<size_t>(lbn)] = pbn;
      if (pbn != 0 && !for_splice) {
        co_await ZeroFill(p, pbn);
      }
    }
    co_return pbn;
  }

  int64_t rest = lbn - kDirectBlocks;
  if (rest < kPtrsPerBlock) {
    if (ip->indirect == 0) {
      if (!alloc) {
        co_return 0;
      }
      ip->indirect = AllocBlock();
      if (ip->indirect == 0) {
        co_return 0;
      }
      // Fresh metadata block: initialize to zero through the cache.
      Buf* b = co_await cache_->GetBlk(p, dev_, ip->indirect);
      std::fill(b->data->begin(), b->data->end(), 0);
      cache_->Bdwrite(p, b);
    }
    int64_t pbn = co_await ReadPtr(p, ip->indirect, rest);
    if (pbn < 0) {
      co_return -1;
    }
    if (pbn == 0 && alloc) {
      pbn = AllocBlock();
      if (pbn != 0) {
        if (!co_await WritePtr(p, ip->indirect, rest, pbn)) {
          FreeBlock(pbn);
          co_return -1;
        }
        if (!for_splice) {
          co_await ZeroFill(p, pbn);
        }
      }
    }
    co_return pbn;
  }

  rest -= kPtrsPerBlock;
  const int64_t outer = rest / kPtrsPerBlock;
  const int64_t inner = rest % kPtrsPerBlock;
  if (outer >= kPtrsPerBlock) {
    co_return 0;  // beyond double-indirect reach (> ~128 GB); not supported
  }
  if (ip->dindirect == 0) {
    if (!alloc) {
      co_return 0;
    }
    ip->dindirect = AllocBlock();
    if (ip->dindirect == 0) {
      co_return 0;
    }
    Buf* b = co_await cache_->GetBlk(p, dev_, ip->dindirect);
    std::fill(b->data->begin(), b->data->end(), 0);
    cache_->Bdwrite(p, b);
  }
  int64_t mid = co_await ReadPtr(p, ip->dindirect, outer);
  if (mid < 0) {
    co_return -1;
  }
  if (mid == 0) {
    if (!alloc) {
      co_return 0;
    }
    mid = AllocBlock();
    if (mid == 0) {
      co_return 0;
    }
    Buf* b = co_await cache_->GetBlk(p, dev_, mid);
    std::fill(b->data->begin(), b->data->end(), 0);
    cache_->Bdwrite(p, b);
    if (!co_await WritePtr(p, ip->dindirect, outer, mid)) {
      FreeBlock(mid);
      co_return -1;
    }
  }
  int64_t pbn = co_await ReadPtr(p, mid, inner);
  if (pbn < 0) {
    co_return -1;
  }
  if (pbn == 0 && alloc) {
    pbn = AllocBlock();
    if (pbn != 0) {
      if (!co_await WritePtr(p, mid, inner, pbn)) {
        FreeBlock(pbn);
        co_return -1;
      }
      if (!for_splice) {
        co_await ZeroFill(p, pbn);
      }
    }
  }
  co_return pbn;
}

Task<std::vector<int64_t>> FileSystem::MapRange(Process& p, Inode* ip, int64_t nblocks,
                                                bool alloc, bool for_splice) {
  std::vector<int64_t> map;
  map.reserve(static_cast<size_t>(nblocks));
  for (int64_t lbn = 0; lbn < nblocks; ++lbn) {
    map.push_back(co_await Bmap(p, ip, lbn, alloc, for_splice));
  }
  co_return map;
}

// --- read / write data path ---

Task<int64_t> FileSystem::Read(Process& p, Inode* ip, int64_t off, int64_t n,
                               std::vector<uint8_t>* out) {
  out->clear();
  if (off >= ip->size || n <= 0) {
    co_return 0;
  }
  n = std::min(n, ip->size - off);
  out->reserve(static_cast<size_t>(n));
  int64_t done = 0;
  while (done < n) {
    const int64_t pos = off + done;
    const int64_t lbn = pos / kBlockSize;
    const int64_t boff = pos % kBlockSize;
    const int64_t chunk = std::min(n - done, kBlockSize - boff);
    const int64_t pbn = co_await Bmap(p, ip, lbn, /*alloc=*/false);
    if (pbn < 0) {
      co_return done > 0 ? done : -1;  // unreadable block map
    }
    if (pbn == 0) {
      out->insert(out->end(), static_cast<size_t>(chunk), 0);  // hole
    } else {
      // Sequential read-ahead: 4.2BSD issues one block; deeper depths are a
      // configurable extension (each read-ahead costs a bmap in-line, the
      // classic trade the paper's future work contemplates).
      for (int ra = 1; ra <= read_ahead_blocks_; ++ra) {
        if ((lbn + ra) * kBlockSize >= ip->size) {
          break;
        }
        const int64_t rapbn = co_await Bmap(p, ip, lbn + ra, /*alloc=*/false);
        if (rapbn <= 0) {
          break;
        }
        cache_->IssueReadAhead(dev_, rapbn);
      }
      Buf* b = co_await cache_->Bread(p, dev_, pbn);
      if (b->Has(kBufError)) {
        cache_->Brelse(b);
        co_return done > 0 ? done : -1;  // short read, or EIO
      }
      out->insert(out->end(), b->data->begin() + boff, b->data->begin() + boff + chunk);
      cache_->Brelse(b);
    }
    // copyout to the user buffer.
    co_await cpu_->Use(p, cpu_->costs().CopyioTime(chunk));
    done += chunk;
  }
  co_return done;
}

Task<int64_t> FileSystem::Write(Process& p, Inode* ip, int64_t off, const uint8_t* data,
                                int64_t n) {
  if (n <= 0) {
    co_return 0;
  }
  int64_t done = 0;
  while (done < n) {
    const int64_t pos = off + done;
    const int64_t lbn = pos / kBlockSize;
    const int64_t boff = pos % kBlockSize;
    const int64_t chunk = std::min(n - done, kBlockSize - boff);
    const bool whole_block = boff == 0 && chunk == kBlockSize;
    // The write path zero-fills partial fresh blocks in memory itself, so it
    // always uses the no-zero-fill allocation.
    const int64_t pbn = co_await Bmap(p, ip, lbn, /*alloc=*/true, /*for_splice=*/true);
    if (pbn < 0) {
      co_return done > 0 ? done : -1;  // unreadable block map
    }
    if (pbn == 0) {
      break;  // device full
    }
    Buf* b;
    if (whole_block) {
      b = co_await cache_->GetBlk(p, dev_, pbn);
    } else {
      const bool covers_existing = lbn < ip->SizeBlocks();
      if (covers_existing) {
        b = co_await cache_->Bread(p, dev_, pbn);
        if (b->Has(kBufError)) {
          cache_->Brelse(b);
          co_return done > 0 ? done : -1;
        }
      } else {
        b = co_await cache_->GetBlk(p, dev_, pbn);
        std::fill(b->data->begin(), b->data->end(), 0);
      }
    }
    std::copy(data + done, data + done + chunk, b->data->begin() + boff);
    // copyin from the user buffer.
    co_await cpu_->Use(p, cpu_->costs().CopyioTime(chunk));
    cache_->Bdwrite(p, b);
    done += chunk;
    ip->size = std::max(ip->size, pos + chunk);
  }
  co_return done;
}

Task<> FileSystem::Fsync(Process& p, Inode* /*ip*/) {
  co_await cache_->FlushDev(p, dev_);
}

// --- untimed helpers ---

int64_t FileSystem::BmapInstant(Inode* ip, int64_t lbn, bool alloc) {
  auto poke_ptr = [this](int64_t blk, int64_t index, int64_t value) {
    std::vector<uint8_t> img = dev_->PeekBlock(blk);
    StorePtr(&img, index, value);
    dev_->PokeBlock(blk, img);
  };
  if (lbn < kDirectBlocks) {
    int64_t pbn = ip->direct[static_cast<size_t>(lbn)];
    if (pbn == 0 && alloc) {
      pbn = AllocBlock();
      ip->direct[static_cast<size_t>(lbn)] = pbn;
    }
    return pbn;
  }
  int64_t rest = lbn - kDirectBlocks;
  if (rest < kPtrsPerBlock) {
    if (ip->indirect == 0) {
      if (!alloc) {
        return 0;
      }
      ip->indirect = AllocBlock();
      dev_->PokeBlock(ip->indirect, std::vector<uint8_t>(kBlockSize, 0));
    }
    int64_t pbn = LoadPtr(dev_->PeekBlock(ip->indirect), rest);
    if (pbn == 0 && alloc) {
      pbn = AllocBlock();
      poke_ptr(ip->indirect, rest, pbn);
    }
    return pbn;
  }
  rest -= kPtrsPerBlock;
  const int64_t outer = rest / kPtrsPerBlock;
  const int64_t inner = rest % kPtrsPerBlock;
  if (outer >= kPtrsPerBlock) {
    return 0;
  }
  if (ip->dindirect == 0) {
    if (!alloc) {
      return 0;
    }
    ip->dindirect = AllocBlock();
    dev_->PokeBlock(ip->dindirect, std::vector<uint8_t>(kBlockSize, 0));
  }
  int64_t mid = LoadPtr(dev_->PeekBlock(ip->dindirect), outer);
  if (mid == 0) {
    if (!alloc) {
      return 0;
    }
    mid = AllocBlock();
    dev_->PokeBlock(mid, std::vector<uint8_t>(kBlockSize, 0));
    poke_ptr(ip->dindirect, outer, mid);
  }
  int64_t pbn = LoadPtr(dev_->PeekBlock(mid), inner);
  if (pbn == 0 && alloc) {
    pbn = AllocBlock();
    poke_ptr(mid, inner, pbn);
  }
  return pbn;
}

Inode* FileSystem::CreateFileInstant(const std::string& fname, int64_t nbytes,
                                     const std::function<uint8_t(int64_t)>& fill) {
  Inode* ip = Create(fname);
  if (ip == nullptr) {
    return nullptr;
  }
  const int64_t nblocks = (nbytes + kBlockSize - 1) / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (int64_t lbn = 0; lbn < nblocks; ++lbn) {
    const int64_t pbn = BmapInstant(ip, lbn, /*alloc=*/true);
    if (pbn == 0) {
      return nullptr;  // device full
    }
    const int64_t base = lbn * kBlockSize;
    const int64_t valid = std::min<int64_t>(kBlockSize, nbytes - base);
    for (int64_t i = 0; i < valid; ++i) {
      block[static_cast<size_t>(i)] = fill(base + i);
    }
    std::fill(block.begin() + valid, block.end(), 0);
    dev_->PokeBlock(pbn, block);
  }
  ip->size = nbytes;
  return ip;
}

std::vector<uint8_t> FileSystem::ReadFileInstant(Inode* ip) {
  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>(ip->size));
  const int64_t nblocks = ip->SizeBlocks();
  for (int64_t lbn = 0; lbn < nblocks; ++lbn) {
    const int64_t pbn = BmapInstant(ip, lbn, /*alloc=*/false);
    const int64_t base = lbn * kBlockSize;
    const int64_t valid = std::min<int64_t>(kBlockSize, ip->size - base);
    if (pbn == 0) {
      out.insert(out.end(), static_cast<size_t>(valid), 0);
    } else {
      const std::vector<uint8_t> blk = dev_->PeekBlock(pbn);
      out.insert(out.end(), blk.begin(), blk.begin() + valid);
    }
  }
  return out;
}

}  // namespace ikdp
