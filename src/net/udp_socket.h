// UDP sockets over simulated links.
//
// The paper's implementation supports "socket-to-socket splices for the UDP
// transport protocol" (Section 5.1).  This socket models the 4.2BSD UDP path
// at datagram granularity:
//
//  * SendAsync: one call = one datagram.  The datagram occupies send-buffer
//    space until the interface has put it on the wire; `done` fires then.
//    Returns false when the send buffer has no room (caller backs off and
//    retries from a completion, which is exactly the splice flow-control
//    hook) or when the socket has no peer.
//  * Datagram arrival raises a network interrupt, charges protocol
//    processing (fixed per-packet cost + a checksum pass over the data) and
//    queues the datagram in the receive buffer, dropping it if full — UDP
//    semantics.  A pending RecvAsync is completed from the interrupt.
//
// Process-context send/recv syscalls are built on these hooks by the OS
// layer (src/os/kernel.h) with sleep/wakeup at kPriSock.

#ifndef SRC_NET_UDP_SOCKET_H_
#define SRC_NET_UDP_SOCKET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "src/buf/buf.h"
#include "src/hw/link.h"
#include "src/kern/cpu.h"
#include "src/kern/ctx.h"

namespace ikdp {

class UdpSocket {
 public:
  UdpSocket(CpuSystem* cpu, int64_t sndbuf_bytes = 48 * 1024, int64_t rcvbuf_bytes = 48 * 1024);

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Connects the send side of this socket to `peer` across `link`
  // (unidirectional; call on both sockets with both links for full duplex).
  void ConnectTo(UdpSocket* peer, NetworkLink* link);

  // --- kernel-level asynchronous API ---

  // Sends one datagram of `nbytes`.  `done` fires when the datagram has left
  // the interface (send-buffer space released).  Returns false if there is
  // no room, no peer, or the interface queue rejected it.
  IKDP_CTX_ANY bool SendAsync(BufData data, int64_t nbytes, std::function<void()> done);

  // Delivers the next datagram (truncated to `max_bytes`, UDP-style) to
  // `done` as soon as one is available.  One outstanding request at a time.
  IKDP_CTX_ANY bool RecvAsync(int64_t max_bytes, std::function<void(BufData, int64_t)> done);

  // Drops the outstanding RecvAsync, if any; its `done` will never fire.
  // Returns true when a pending receive was dropped.  Splice teardown uses
  // this so a receiver parked on a quiet wire cannot pin an errored or
  // cancelled stream.
  IKDP_CTX_ANY bool CancelRecv();

  // Send-buffer space currently free.
  int64_t SendSpace() const { return sndbuf_bytes_ - snd_inflight_; }

  // Receive queue state.
  bool HasData() const { return !rcv_queue_.empty(); }
  int64_t RecvQueuedBytes() const { return rcv_queued_bytes_; }

  // Wakeup channels for blocking wrappers: the OS layer sleeps on these and
  // the socket wakes them on send-space / data arrival.
  const void* SendChannel() const { return &snd_inflight_; }
  const void* RecvChannel() const { return &rcv_queued_bytes_; }

  struct Stats {
    uint64_t dgrams_sent = 0;
    uint64_t dgrams_received = 0;
    uint64_t dgrams_dropped_rcvbuf = 0;  // receive-buffer overflow
    uint64_t dgrams_dropped_wire = 0;    // interface queue overflow
    int64_t bytes_sent = 0;
    int64_t bytes_received = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Datagram {
    BufData data;
    int64_t nbytes;
  };

  // Receive-side entry, called from the link: raises the network interrupt
  // itself (RunInterrupt), so callable from any context.  `serial` is the
  // datagram serial minted at SendAsync, for kUdpRecv trace pairing.
  IKDP_CTX_ANY void Deliver(BufData data, int64_t nbytes, uint64_t serial);

  // Completes a pending RecvAsync if there is data (runs at interrupt level
  // on the delivery path, in process context from RecvAsync).
  IKDP_CTX_ANY void TryCompleteRecv();

  CpuSystem* cpu_;
  int64_t sndbuf_bytes_;
  int64_t rcvbuf_bytes_;

  UdpSocket* peer_ = nullptr;
  NetworkLink* link_ = nullptr;

  int64_t snd_inflight_ = 0;
  std::deque<Datagram> rcv_queue_;
  int64_t rcv_queued_bytes_ = 0;

  bool recv_pending_ = false;
  int64_t recv_max_ = 0;
  std::function<void(BufData, int64_t)> recv_done_;

  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_NET_UDP_SOCKET_H_
