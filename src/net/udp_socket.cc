#include "src/net/udp_socket.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ikdp {

namespace {
// Process-wide datagram serial: the single-host simulation mints one per
// accepted SendAsync so kUdpSend/kUdpSent/kUdpRecv records pair across
// sockets within one trace log.  Monotonic, never reset — pairing only
// needs uniqueness, not density.
uint64_t g_datagram_serial = 0;
}  // namespace

UdpSocket::UdpSocket(CpuSystem* cpu, int64_t sndbuf_bytes, int64_t rcvbuf_bytes)
    : cpu_(cpu), sndbuf_bytes_(sndbuf_bytes), rcvbuf_bytes_(rcvbuf_bytes) {}

void UdpSocket::ConnectTo(UdpSocket* peer, NetworkLink* link) {
  peer_ = peer;
  link_ = link;
}

bool UdpSocket::SendAsync(BufData data, int64_t nbytes, std::function<void()> done) {
  assert(nbytes >= 0);  // zero-length datagrams are legal UDP (end-of-stream marker)
  if (peer_ == nullptr || link_ == nullptr) {
    return false;
  }
  if (snd_inflight_ + nbytes > sndbuf_bytes_) {
    return false;
  }
  // Refuse a full interface BEFORE paying protocol processing or copying
  // the payload: a splice sink retrying off the softclock would otherwise
  // burn a full output-path charge per refusal — a busy-wait dressed up as
  // flow control — instead of backpressuring at (almost) no CPU cost.
  if (!link_->HasTxRoom()) {
    ++stats_.dgrams_dropped_wire;
    return false;
  }
  // Output protocol processing runs in the sender's context; charge it when
  // that context is an interrupt (splice handlers).  Process-context sends
  // are charged by the syscall layer.
  if (cpu_->InInterrupt()) {
    cpu_->ChargeInterrupt(cpu_->costs().UdpPacketTime(nbytes));
  }
  UdpSocket* peer = peer_;
  // The sender's kspan rides the wire: the leave-interface and delivery
  // events attribute to the request that queued the datagram, however long
  // the propagation delay defers them.
  const SpanId span = CurrentKspan().span;
  const uint64_t serial = g_datagram_serial + 1;
  // Snapshot the payload: the wire carries the bytes as they were when the
  // datagram was queued, and the sender is free to recycle its buffer once
  // `done` fires (before the propagation delay has elapsed).
  BufData wire_copy = std::make_shared<std::vector<uint8_t>>(
      data->begin(), data->begin() + std::min<int64_t>(nbytes, data->size()));
  wire_copy->resize(static_cast<size_t>(nbytes), 0);
  const bool accepted = link_->Send(
      nbytes,
      [peer, wire_copy = std::move(wire_copy), nbytes, span, serial](int64_t) {
        KspanScope scope("net", span);
        peer->Deliver(wire_copy, nbytes, serial);
      },
      [this, nbytes, span, serial, done = std::move(done)] {
        KspanScope scope("net", span);
        if (TraceLog* t = cpu_->trace()) {
          t->Record(cpu_->sim()->Now(), TraceKind::kUdpSent, static_cast<int64_t>(serial),
                    nbytes);
        }
        snd_inflight_ -= nbytes;
        cpu_->Wakeup(SendChannel());
        if (done) {
          done();
        }
      });
  if (!accepted) {
    ++stats_.dgrams_dropped_wire;
    return false;
  }
  ++g_datagram_serial;
  if (TraceLog* t = cpu_->trace()) {
    t->Record(cpu_->sim()->Now(), TraceKind::kUdpSend, static_cast<int64_t>(serial), nbytes);
  }
  snd_inflight_ += nbytes;
  ++stats_.dgrams_sent;
  stats_.bytes_sent += nbytes;
  return true;
}

void UdpSocket::Deliver(BufData data, int64_t nbytes, uint64_t serial) {
  // Input side: network interrupt + protocol processing + checksum.  The
  // caller (the link delivery lambda) has pushed the sender's span, so the
  // raise-time capture attributes this interrupt to the sending request.
  cpu_->RunInterrupt(
      cpu_->costs().interrupt_overhead + cpu_->costs().UdpPacketTime(nbytes),
      [this, data = std::move(data), nbytes, serial]() mutable {
        if (rcv_queued_bytes_ + nbytes > rcvbuf_bytes_) {
          ++stats_.dgrams_dropped_rcvbuf;
          return;
        }
        rcv_queue_.push_back(Datagram{std::move(data), nbytes});
        rcv_queued_bytes_ += nbytes;
        ++stats_.dgrams_received;
        stats_.bytes_received += nbytes;
        if (TraceLog* t = cpu_->trace()) {
          t->Record(cpu_->sim()->Now(), TraceKind::kUdpRecv, static_cast<int64_t>(serial),
                    nbytes);
        }
        TryCompleteRecv();
        cpu_->Wakeup(RecvChannel());
      });
}

bool UdpSocket::CancelRecv() {
  if (!recv_pending_) {
    return false;
  }
  // Drop the parked receive; its callback never fires.  Queued datagrams
  // stay in the receive buffer for any future reader.
  recv_pending_ = false;
  recv_done_ = nullptr;
  recv_max_ = 0;
  return true;
}

bool UdpSocket::RecvAsync(int64_t max_bytes, std::function<void(BufData, int64_t)> done) {
  if (recv_pending_ || max_bytes <= 0) {
    return false;
  }
  recv_pending_ = true;
  recv_max_ = max_bytes;
  recv_done_ = std::move(done);
  TryCompleteRecv();
  return true;
}

void UdpSocket::TryCompleteRecv() {
  if (!recv_pending_ || rcv_queue_.empty()) {
    return;
  }
  Datagram d = std::move(rcv_queue_.front());
  rcv_queue_.pop_front();
  rcv_queued_bytes_ -= d.nbytes;
  const int64_t n = std::min(d.nbytes, recv_max_);  // truncation, UDP-style
  recv_pending_ = false;
  auto done = std::move(recv_done_);
  recv_done_ = nullptr;
  done(std::move(d.data), n);
}

}  // namespace ikdp
