#include "src/os/kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/splice/file_endpoint.h"
#include "src/splice/stream_endpoint.h"

namespace ikdp {

Kernel::Kernel(Simulator* sim, CostConfig costs, int nbufs, int hz)
    : sim_(sim),
      cpu_(sim, costs),
      callouts_(sim, hz),
      cache_(&cpu_, nbufs),
      splice_(&cpu_, &callouts_) {}

// --- setup ---

void Kernel::AttachTrace(TraceLog* trace) {
  cpu_.set_trace(trace);
  callouts_.set_trace(trace);
}

FileSystem* Kernel::MountFs(BlockDevice* dev, const std::string& name) {
  assert(mounts_.count(name) == 0);
  auto fs = std::make_unique<FileSystem>(&cpu_, &cache_, dev, name);
  FileSystem* out = fs.get();
  mounts_[name] = std::move(fs);
  return out;
}

FileSystem* Kernel::FindFs(const std::string& name) {
  auto it = mounts_.find(name);
  return it == mounts_.end() ? nullptr : it->second.get();
}

std::vector<FileSystem*> Kernel::Mounts() {
  std::vector<FileSystem*> out;
  out.reserve(mounts_.size());
  for (auto& [name, fs] : mounts_) {
    out.push_back(fs.get());
  }
  return out;
}

void Kernel::RegisterCharDev(const std::string& name, CharDevice* dev) {
  char_devs_[name] = dev;
}

Process* Kernel::Spawn(const std::string& name, std::function<Task<>(Process&)> body) {
  return cpu_.Spawn(name, std::move(body));
}

// --- syscall plumbing ---

Task<> Kernel::SyscallEnter(Process& p, const char* name) {
  ++stats_.syscalls;
  if (cpu_.trace() != nullptr) {
    cpu_.trace()->Record(sim_->Now(), TraceKind::kSyscallEnter, p.pid(), 0, name);
  }
  cpu_.AccountTrap(p, cpu_.costs().syscall_overhead);
  co_await cpu_.Use(p, cpu_.costs().syscall_overhead);
}

void Kernel::SyscallExit(Process& p, const char* name) {
  if (cpu_.trace() != nullptr) {
    cpu_.trace()->Record(sim_->Now(), TraceKind::kSyscallExit, p.pid(), 0, name);
  }
  p.ResetPriority();
  p.TakeSignals();
}

// The fd-table critical sections never suspend, so the SleepLock's
// uncontended fast path is the right acquire here: on the simulated single
// CPU there is no second process to contend with inside a non-suspending
// section, and AcquireUncontended aborts (rather than sleeps) if that
// invariant is ever broken.
int Kernel::Install(Process& p, std::shared_ptr<File> f) {
  ktable_lock_.AcquireUncontended();
  ProcFiles& pf = files_[&p];
  const int fd = pf.next_fd++;
  pf.fds[fd] = std::move(f);
  ktable_lock_.Release();
  return fd;
}

std::shared_ptr<File> Kernel::GetFile(Process& p, int fd) {
  ktable_lock_.AcquireUncontended();
  auto pit = files_.find(&p);
  if (pit == files_.end()) {
    ktable_lock_.Release();
    return nullptr;
  }
  auto fit = pit->second.fds.find(fd);
  std::shared_ptr<File> f = fit == pit->second.fds.end() ? nullptr : fit->second;
  ktable_lock_.Release();
  return f;
}

// --- file syscalls ---

Task<int> Kernel::Open(Process& p, const std::string& path, uint32_t flags) {
  co_await SyscallEnter(p, "open");
  int result = -1;
  if (path.rfind("/dev/", 0) == 0) {
    auto it = char_devs_.find(path.substr(5));
    if (it != char_devs_.end()) {
      result = Install(p, std::make_shared<DeviceFile>(&cpu_, it->second));
    }
  } else if (const size_t colon = path.find(':'); colon != std::string::npos) {
    FileSystem* fs = FindFs(path.substr(0, colon));
    if (fs != nullptr) {
      const std::string fname = path.substr(colon + 1);
      Inode* ip = fs->Lookup(fname);
      if (ip == nullptr && (flags & kOpenCreate) != 0) {
        ip = fs->Create(fname);
      }
      if (ip != nullptr) {
        if ((flags & kOpenTrunc) != 0) {
          fs->Truncate(ip);
        }
        result = Install(p, std::make_shared<RegularFile>(fs, ip));
      }
    }
  }
  SyscallExit(p, "open");
  co_return result;
}

Task<int> Kernel::Close(Process& p, int fd) {
  co_await SyscallEnter(p, "close");
  ktable_lock_.AcquireUncontended();
  auto pit = files_.find(&p);
  const int result = (pit != files_.end() && pit->second.fds.erase(fd) > 0) ? 0 : -1;
  ktable_lock_.Release();
  SyscallExit(p, "close");
  co_return result;
}

Task<int64_t> Kernel::Read(Process& p, int fd, int64_t n, std::vector<uint8_t>* out) {
  co_await SyscallEnter(p, "read");
  std::shared_ptr<File> f = GetFile(p, fd);
  int64_t result = -1;
  if (f != nullptr) {
    result = co_await f->Read(p, n, out);
  }
  SyscallExit(p, "read");
  co_return result;
}

Task<int64_t> Kernel::Write(Process& p, int fd, const uint8_t* data, int64_t n) {
  co_await SyscallEnter(p, "write");
  std::shared_ptr<File> f = GetFile(p, fd);
  int64_t result = -1;
  if (f != nullptr) {
    result = co_await f->Write(p, data, n);
  }
  SyscallExit(p, "write");
  co_return result;
}

Task<int64_t> Kernel::Write(Process& p, int fd, const std::vector<uint8_t>& data) {
  co_return co_await Write(p, fd, data.data(), static_cast<int64_t>(data.size()));
}

Task<int64_t> Kernel::Lseek(Process& p, int fd, int64_t offset) {
  co_await SyscallEnter(p, "lseek");
  std::shared_ptr<File> f = GetFile(p, fd);
  int64_t result = -1;
  if (f != nullptr && f->kind() == File::Kind::kRegular && offset >= 0) {
    static_cast<RegularFile*>(f.get())->offset = offset;
    result = offset;
  }
  SyscallExit(p, "lseek");
  co_return result;
}

Task<int64_t> Kernel::Tell(Process& p, int fd) {
  co_await SyscallEnter(p, "tell");
  std::shared_ptr<File> f = GetFile(p, fd);
  int64_t result = -1;
  if (f != nullptr && f->kind() == File::Kind::kRegular) {
    result = static_cast<RegularFile*>(f.get())->offset;
  }
  SyscallExit(p, "tell");
  co_return result;
}

Task<int> Kernel::SpliceError(Process& p, int fd) {
  co_await SyscallEnter(p, "splice_error");
  std::shared_ptr<File> f = GetFile(p, fd);
  int result = -1;
  if (f != nullptr) {
    result = f->splice_error;
  }
  SyscallExit(p, "splice_error");
  co_return result;
}

Task<int> Kernel::SpliceStatus(Process& p, int fd) {
  co_await SyscallEnter(p, "splice_status");
  std::shared_ptr<File> f = GetFile(p, fd);
  int result = -1;
  if (f != nullptr) {
    result = f->splice_active ? 1 : 0;
  }
  SyscallExit(p, "splice_status");
  co_return result;
}

Task<int> Kernel::Dup(Process& p, int fd) {
  co_await SyscallEnter(p, "dup");
  std::shared_ptr<File> f = GetFile(p, fd);
  int result = -1;
  if (f != nullptr) {
    result = Install(p, std::move(f));
  }
  SyscallExit(p, "dup");
  co_return result;
}

Task<int> Kernel::Fcntl(Process& p, int fd, bool fasync) {
  co_await SyscallEnter(p, "fcntl");
  std::shared_ptr<File> f = GetFile(p, fd);
  int result = -1;
  if (f != nullptr) {
    f->fasync = fasync;
    result = 0;
  }
  SyscallExit(p, "fcntl");
  co_return result;
}

Task<int> Kernel::FsyncFd(Process& p, int fd) {
  co_await SyscallEnter(p, "fsync");
  std::shared_ptr<File> f = GetFile(p, fd);
  int result = -1;
  if (f != nullptr) {
    co_await f->Fsync(p);
    result = 0;
  }
  SyscallExit(p, "fsync");
  co_return result;
}

// --- splice ---

Task<std::unique_ptr<SpliceSource>> Kernel::MakeSource(Process& p,
                                                       const std::shared_ptr<File>& f,
                                                       int64_t nbytes, bool sink_is_file,
                                                       int64_t* resolved_bytes, int* err) {
  *resolved_bytes = -1;
  *err = kErrInval;
  switch (f->kind()) {
    case File::Kind::kRegular: {
      auto* rf = static_cast<RegularFile*>(f.get());
      Inode* ip = rf->inode();
      if (rf->offset % kBlockSize != 0) {
        co_return nullptr;  // file splices require block-aligned offsets
      }
      const int64_t avail = ip->size - rf->offset;
      const int64_t len = nbytes == kSpliceEof ? avail : std::min(nbytes, avail);
      if (len < 0) {
        co_return nullptr;
      }
      // "The entire list of all physical block numbers comprising the
      // source file is determined by successive calls to bmap()."
      const int64_t first = rf->offset / kBlockSize;
      const int64_t nblocks = (len + kBlockSize - 1) / kBlockSize;
      std::vector<int64_t> map;
      map.reserve(static_cast<size_t>(nblocks));
      for (int64_t i = 0; i < nblocks; ++i) {
        const int64_t pbn = co_await rf->fs()->Bmap(p, ip, first + i, /*alloc=*/false);
        if (pbn < 0) {
          *err = kErrIo;  // the block map itself is unreadable
          co_return nullptr;
        }
        if (pbn == 0) {
          co_return nullptr;  // holes are not spliceable
        }
        map.push_back(pbn);
      }
      rf->offset += len;
      *resolved_bytes = len;
      co_return std::make_unique<FileSpliceSource>(&cache_, rf->fs()->dev(), std::move(map),
                                                   len);
    }
    case File::Kind::kCharDev: {
      auto* df = static_cast<DeviceFile*>(f.get());
      if (!df->dev()->SupportsRead()) {
        co_return nullptr;
      }
      const int64_t len = nbytes == kSpliceEof ? -1 : nbytes;
      *resolved_bytes = len;
      co_return std::make_unique<DeviceSpliceSource>(df->dev(), len, kBlockSize, sink_is_file);
    }
    case File::Kind::kSocket: {
      auto* sf = static_cast<SocketFile*>(f.get());
      // Sockets are streams: the splice runs until the zero-length
      // end-of-stream datagram (or cancellation); a byte limit is advisory.
      co_return std::make_unique<SocketSpliceSource>(sf->socket());
    }
    case File::Kind::kPipe: {
      auto* pf = static_cast<PipeEndFile*>(f.get());
      if (!pf->read_end()) {
        co_return nullptr;
      }
      // A pipe is a byte stream: bounded by the byte budget, or unbounded
      // until the writer's EOF (which ReadAsync reports as 0 bytes).
      const int64_t len = nbytes == kSpliceEof ? -1 : nbytes;
      *resolved_bytes = len;
      co_return std::make_unique<DeviceSpliceSource>(pf->pipe(), len, kBlockSize, sink_is_file);
    }
  }
  co_return nullptr;
}

Task<std::unique_ptr<SpliceSink>> Kernel::MakeSink(Process& p, const std::shared_ptr<File>& f,
                                                   int64_t nbytes,
                                                   std::function<void(int64_t)>* on_moved,
                                                   int* err) {
  *on_moved = nullptr;
  *err = kErrInval;
  switch (f->kind()) {
    case File::Kind::kRegular: {
      auto* rf = static_cast<RegularFile*>(f.get());
      Inode* ip = rf->inode();
      if (rf->offset % kBlockSize != 0 || nbytes < 0) {
        co_return nullptr;  // unbounded splice into a file is unsupported
      }
      // Premap the destination, allocating with the special splice bmap
      // (no zero-fill delayed writes) unless the ablation asks for stock.
      const int64_t first = rf->offset / kBlockSize;
      const int64_t nblocks = (nbytes + kBlockSize - 1) / kBlockSize;
      std::vector<int64_t> map;
      map.reserve(static_cast<size_t>(nblocks));
      for (int64_t i = 0; i < nblocks; ++i) {
        const int64_t pbn =
            co_await rf->fs()->Bmap(p, ip, first + i, /*alloc=*/true,
                                    /*for_splice=*/!splice_options_.stock_destination_bmap);
        if (pbn < 0) {
          *err = kErrIo;  // the block map itself is unreadable
          co_return nullptr;
        }
        if (pbn == 0) {
          *err = kErrNoSpc;  // device full
          co_return nullptr;
        }
        map.push_back(pbn);
      }
      const int64_t start = rf->offset;
      std::shared_ptr<File> keep = f;  // pin the open file until completion
      *on_moved = [keep, ip, start](int64_t moved) {
        auto* file = static_cast<RegularFile*>(keep.get());
        file->offset = start + moved;
        ip->size = std::max(ip->size, start + moved);
      };
      co_return std::make_unique<FileSpliceSink>(&cache_, rf->fs()->dev(), std::move(map));
    }
    case File::Kind::kCharDev: {
      auto* df = static_cast<DeviceFile*>(f.get());
      if (!df->dev()->SupportsWrite()) {
        co_return nullptr;
      }
      co_return std::make_unique<DeviceSpliceSink>(&cpu_, df->dev());
    }
    case File::Kind::kSocket: {
      auto* sf = static_cast<SocketFile*>(f.get());
      co_return std::make_unique<SocketSpliceSink>(&cpu_, sf->socket());
    }
    case File::Kind::kPipe: {
      auto* pf = static_cast<PipeEndFile*>(f.get());
      if (pf->read_end()) {
        co_return nullptr;
      }
      co_return std::make_unique<DeviceSpliceSink>(&cpu_, pf->pipe());
    }
  }
  co_return nullptr;
}

Task<int64_t> Kernel::Splice(Process& p, int src_fd, int dst_fd, int64_t nbytes) {
  co_await SyscallEnter(p, "splice");
  std::shared_ptr<File> src = GetFile(p, src_fd);
  std::shared_ptr<File> dst = GetFile(p, dst_fd);
  if (src == nullptr || dst == nullptr || (nbytes < 0 && nbytes != kSpliceEof)) {
    SyscallExit(p, "splice");
    co_return -1;
  }
  if (src->kind() == File::Kind::kRegular && dst->kind() == File::Kind::kRegular &&
      static_cast<RegularFile*>(src.get())->inode() ==
          static_cast<RegularFile*>(dst.get())->inode()) {
    // Splicing a file onto itself would interleave reads and writes over one
    // block map; refuse it (the paper's splice has no such mode either).
    SyscallExit(p, "splice");
    co_return -1;
  }
  // Operator binding: the source side's program wins; the sink side's rides
  // only when the source has none.  Bind-rule refusals — a fan-out program
  // on a two-fd splice, or a dropping program over a seekable sink whose
  // offset bookkeeping assumes contiguous bytes — are EINVAL *before* any
  // endpoint state is consumed (MakeSource advances the file offset).
  const std::shared_ptr<const KopProgram> kprog =
      src->kop_program != nullptr ? src->kop_program : dst->kop_program;
  if (kprog != nullptr &&
      (!kprog->verified || kprog->SinkCount() != 1 ||
       (kprog->CanDrop() && dst->kind() == File::Kind::kRegular))) {
    src->splice_error = kErrInval;
    dst->splice_error = kErrInval;
    SyscallExit(p, "splice");
    co_return -1;
  }
  // Stale status from a previous splice is cleared up front so a setup
  // failure below records its errno against a clean slate.
  src->splice_error = 0;
  dst->splice_error = 0;
  int setup_err = kErrInval;
  int64_t resolved = -1;
  const bool sink_is_file = dst->kind() == File::Kind::kRegular;
  std::unique_ptr<SpliceSource> source =
      co_await MakeSource(p, src, nbytes, sink_is_file, &resolved, &setup_err);
  if (source == nullptr) {
    src->splice_error = setup_err;
    dst->splice_error = setup_err;
    SyscallExit(p, "splice");
    co_return -1;
  }
  std::function<void(int64_t)> on_moved;
  std::unique_ptr<SpliceSink> sink = co_await MakeSink(p, dst, resolved, &on_moved, &setup_err);
  if (sink == nullptr) {
    src->splice_error = setup_err;
    dst->splice_error = setup_err;
    SyscallExit(p, "splice");
    co_return -1;
  }

  // "The splice operates asynchronously if either of the file descriptors
  // have the FASYNC flag enabled."  (Section 3)
  const bool async = src->fasync || dst->fasync;
  SpliceOptions opts = splice_options_;
  opts.kop_program = kprog;
  // The initial read batch is issued from this process's context inside
  // Start(); synchronous devices perform their copies right there, so the
  // accumulated cost lands on the caller.
  auto charge_setup = [this, &p]() -> Task<> {
    const SimDuration charge = cache_.TakeSyncCharge() + splice_.TakeSyncCharge();
    if (charge > 0) {
      co_await cpu_.Use(p, charge);
    }
    // Operator work performed synchronously during setup (chunks that ran
    // the program inside StartEx on a synchronous device) is charged apart
    // so it lands in the kop.process attribution bucket.
    const SimDuration kcharge = splice_.TakeSyncKopCharge();
    if (kcharge > 0) {
      co_await cpu_.UseKop(p, kcharge);
    }
  };
  // Both endpoints learn the splice's fate: 0 on success, the errno of the
  // first failure otherwise (readable with SpliceError after SIGIO, or
  // alongside the sync path's -1).
  if (async) {
    ++stats_.splices_async;
    Process* proc = &p;
    // Raised before StartEx and dropped before SIGIO posts, so SpliceStatus
    // can never observe "idle" while the stream is still moving.
    src->splice_active = true;
    dst->splice_active = true;
    splice_.StartEx(std::move(source), std::move(sink), opts,
                    [this, proc, on_moved, src, dst](const SpliceCompletion& c) {
                      src->splice_error = c.error;
                      dst->splice_error = c.error;
                      src->splice_active = false;
                      dst->splice_active = false;
                      if (on_moved && !c.io_error) {
                        on_moved(c.bytes_moved);
                      }
                      // "A calling program can opt to catch SIGIO to detect
                      // the completion of an asynchronous splice."
                      cpu_.Post(*proc, kSigIo);
                    });
    co_await charge_setup();
    SyscallExit(p, "splice");
    co_return 0;
  }

  ++stats_.splices_sync;
  struct Waiter {
    bool done = false;
    int64_t moved = 0;
  } w;
  SpliceDescriptor* d = splice_.StartEx(
      std::move(source), std::move(sink), opts,
      [this, &w, on_moved, src, dst](const SpliceCompletion& c) {
        src->splice_error = c.error;
        dst->splice_error = c.error;
        if (on_moved && !c.io_error) {
          on_moved(c.bytes_moved);
        }
        w.done = true;
        w.moved = c.io_error ? -1 : c.bytes_moved;
        cpu_.Wakeup(&w);
      });
  co_await charge_setup();
  // "... until an end of file condition is reached or the operation is
  // interrupted by the caller" (Section 3): a signal cancels the transfer;
  // in-flight chunks drain and the partial byte count is returned.
  bool cancelled = false;
  while (!w.done) {
    // Once cancelled, wait uninterruptibly for the drain: the signal that
    // triggered the cancel is still pending (delivered at syscall exit) and
    // must not spin this loop.
    co_await cpu_.Sleep(p, &w, kPriWait, /*interruptible=*/!cancelled);
    if (!w.done && !cancelled && p.SignalPending()) {
      splice_.Cancel(d);
      cancelled = true;
    }
  }
  SyscallExit(p, "splice");
  co_return w.moved;
}

// --- in-kernel splice operators ---

std::shared_ptr<const KopProgram> Kernel::GetKopProgram(Process& p, int kop_id) {
  auto pit = kops_.find(&p);
  if (pit == kops_.end()) {
    return nullptr;
  }
  auto it = pit->second.find(kop_id);
  return it == pit->second.end() ? nullptr : it->second;
}

Task<int> Kernel::KopLoad(Process& p, KopProgram prog) {
  co_await SyscallEnter(p, "kop_load");
  int result = -1;
  if (KopVerify(prog, kBlockSize).empty()) {
    // Verification walks every stage once; charge it as operator work so it
    // lands in the kop.process bucket alongside execution charges.
    co_await cpu_.UseKop(
        p, static_cast<SimDuration>(prog.stages.size()) * cpu_.costs().kop_stage_overhead);
    prog.verified = true;
    const int id = next_kop_id_++;
    kops_[&p][id] = std::make_shared<const KopProgram>(std::move(prog));
    ++stats_.kop_loads;
    result = id;
  } else {
    ++stats_.kop_load_failures;
  }
  SyscallExit(p, "kop_load");
  co_return result;
}

Task<int> Kernel::KopAttach(Process& p, int fd, int kop_id) {
  co_await SyscallEnter(p, "kop_attach");
  std::shared_ptr<File> f = GetFile(p, fd);
  int result = -1;
  if (f != nullptr) {
    if (kop_id == 0) {
      f->kop_program = nullptr;
      result = 0;
    } else if (std::shared_ptr<const KopProgram> prog = GetKopProgram(p, kop_id)) {
      f->kop_program = std::move(prog);
      ++stats_.kop_attaches;
      result = 0;
    }
  }
  SyscallExit(p, "kop_attach");
  co_return result;
}

Task<int64_t> Kernel::SpliceMulti(Process& p, int src_fd, const std::vector<int>& dst_fds,
                                  int64_t nbytes) {
  co_await SyscallEnter(p, "splice_multi");
  std::shared_ptr<File> src = GetFile(p, src_fd);
  std::vector<std::shared_ptr<File>> dsts;
  bool ok = src != nullptr && (nbytes >= 0 || nbytes == kSpliceEof) && !dst_fds.empty();
  if (ok) {
    for (const int fd : dst_fds) {
      std::shared_ptr<File> d = GetFile(p, fd);
      // Routing leaves per-sink byte positions undefined, so seekable
      // destinations are refused up front.
      if (d == nullptr || d->kind() == File::Kind::kRegular) {
        ok = false;
        break;
      }
      dsts.push_back(std::move(d));
    }
  }
  // The fan-out is driven by a route-stage program on the source; its
  // declared sink count must match the destination list exactly.
  const std::shared_ptr<const KopProgram> kprog = ok ? src->kop_program : nullptr;
  if (kprog == nullptr || !kprog->verified ||
      kprog->SinkCount() != static_cast<int>(dst_fds.size())) {
    if (src != nullptr) {
      src->splice_error = kErrInval;
    }
    for (const auto& d : dsts) {
      d->splice_error = kErrInval;
    }
    SyscallExit(p, "splice_multi");
    co_return -1;
  }
  src->splice_error = 0;
  for (const auto& d : dsts) {
    d->splice_error = 0;
  }
  int setup_err = kErrInval;
  int64_t resolved = -1;
  std::unique_ptr<SpliceSource> source =
      co_await MakeSource(p, src, nbytes, /*sink_is_file=*/false, &resolved, &setup_err);
  std::vector<std::unique_ptr<SpliceSink>> sinks;
  if (source != nullptr) {
    for (const auto& d : dsts) {
      std::function<void(int64_t)> unused;  // never set for non-file sinks
      std::unique_ptr<SpliceSink> sink = co_await MakeSink(p, d, resolved, &unused, &setup_err);
      if (sink == nullptr) {
        break;
      }
      sinks.push_back(std::move(sink));
    }
  }
  if (source == nullptr || sinks.size() != dsts.size()) {
    src->splice_error = setup_err;
    for (const auto& d : dsts) {
      d->splice_error = setup_err;
    }
    SyscallExit(p, "splice_multi");
    co_return -1;
  }

  bool async = src->fasync;
  for (const auto& d : dsts) {
    async = async || d->fasync;
  }
  SpliceOptions opts = splice_options_;
  opts.kop_program = kprog;
  auto charge_setup = [this, &p]() -> Task<> {
    const SimDuration charge = cache_.TakeSyncCharge() + splice_.TakeSyncCharge();
    if (charge > 0) {
      co_await cpu_.Use(p, charge);
    }
    const SimDuration kcharge = splice_.TakeSyncKopCharge();
    if (kcharge > 0) {
      co_await cpu_.UseKop(p, kcharge);
    }
  };
  if (async) {
    ++stats_.splices_async;
    Process* proc = &p;
    src->splice_active = true;
    for (const auto& d : dsts) {
      d->splice_active = true;
    }
    splice_.StartMulti(std::move(source), std::move(sinks), opts,
                       [this, proc, src, dsts](const SpliceCompletion& c) {
                         src->splice_error = c.error;
                         src->splice_active = false;
                         for (const auto& d : dsts) {
                           d->splice_error = c.error;
                           d->splice_active = false;
                         }
                         cpu_.Post(*proc, kSigIo);
                       });
    co_await charge_setup();
    SyscallExit(p, "splice_multi");
    co_return 0;
  }

  ++stats_.splices_sync;
  struct Waiter {
    bool done = false;
    int64_t moved = 0;
  } w;
  SpliceDescriptor* d = splice_.StartMulti(std::move(source), std::move(sinks), opts,
                                           [this, &w, src, dsts](const SpliceCompletion& c) {
                                             src->splice_error = c.error;
                                             for (const auto& dst : dsts) {
                                               dst->splice_error = c.error;
                                             }
                                             w.done = true;
                                             w.moved = c.io_error ? -1 : c.bytes_moved;
                                             cpu_.Wakeup(&w);
                                           });
  co_await charge_setup();
  bool cancelled = false;
  while (!w.done) {
    co_await cpu_.Sleep(p, &w, kPriWait, /*interruptible=*/!cancelled);
    if (!w.done && !cancelled && p.SignalPending()) {
      splice_.Cancel(d);
      cancelled = true;
    }
  }
  SyscallExit(p, "splice_multi");
  co_return w.moved;
}

// --- asynchronous splice ring ---

Task<int> Kernel::RingSetup(Process& p, const RingConfig& config) {
  co_await SyscallEnter(p, "ring_setup");
  int result = -kAioEInval;
  if (config.sq_entries > 0 && config.cq_entries > 0 && config.max_inflight > 0) {
    const int id = next_ring_id_++;
    rings_[&p][id] = std::make_unique<SpliceRing>(id, &cpu_, &callouts_, &splice_, config);
    result = id;
  }
  SyscallExit(p, "ring_setup");
  co_return result;
}

SpliceRing* Kernel::GetRing(Process& p, int ring_id) {
  auto pit = rings_.find(&p);
  if (pit == rings_.end()) {
    return nullptr;
  }
  auto rit = pit->second.find(ring_id);
  return rit == pit->second.end() ? nullptr : rit->second.get();
}

std::vector<SpliceRing*> Kernel::Rings() {
  std::vector<SpliceRing*> out;
  for (auto& [proc, rings] : rings_) {
    for (auto& [id, ring] : rings) {
      out.push_back(ring.get());
    }
  }
  return out;
}

int Kernel::RingPrepare(Process& p, int ring_id, const SpliceSqe& sqe) {
  SpliceRing* ring = GetRing(p, ring_id);
  if (ring == nullptr) {
    return -kAioEBadf;
  }
  ring->Prepare(sqe);
  return 0;
}

int Kernel::RingHarvest(Process& p, int ring_id, SpliceCqe* out, int max) {
  SpliceRing* ring = GetRing(p, ring_id);
  if (ring == nullptr) {
    return -kAioEBadf;
  }
  return ring->Harvest(out, max);
}

Task<int> Kernel::ResolveSqe(Process& p, const SpliceSqe& sqe, SpliceRing::PreparedOp* out) {
  std::shared_ptr<File> src = GetFile(p, sqe.src_fd);
  std::shared_ptr<File> dst = GetFile(p, sqe.dst_fd);
  if (src == nullptr || dst == nullptr) {
    co_return -kAioEBadf;
  }
  if (sqe.nbytes < 0 && sqe.nbytes != kSpliceEof) {
    co_return -kAioEInval;
  }
  if (src->kind() == File::Kind::kRegular && dst->kind() == File::Kind::kRegular &&
      static_cast<RegularFile*>(src.get())->inode() ==
          static_cast<RegularFile*>(dst.get())->inode()) {
    co_return -kAioEInval;
  }
  // Resolve the SQE's operator program under the same bind rules as Splice:
  // ring ops have exactly one sink, and a dropping program over a seekable
  // sink would corrupt the on_moved offset bookkeeping.  Checked before
  // MakeSource so a refused SQE doesn't consume the file offset.
  std::shared_ptr<const KopProgram> kprog;
  if (sqe.kop_id != 0) {
    kprog = GetKopProgram(p, sqe.kop_id);
    if (kprog == nullptr || !kprog->verified || kprog->SinkCount() != 1 ||
        (kprog->CanDrop() && dst->kind() == File::Kind::kRegular)) {
      co_return -kAioEInval;
    }
  }
  int setup_err = kErrInval;
  int64_t resolved = -1;
  const bool sink_is_file = dst->kind() == File::Kind::kRegular;
  std::unique_ptr<SpliceSource> source =
      co_await MakeSource(p, src, sqe.nbytes, sink_is_file, &resolved, &setup_err);
  if (source == nullptr) {
    co_return -setup_err;  // kErrInval aliases kAioEInval, kErrIo kAioEIo
  }
  std::function<void(int64_t)> on_moved;
  std::unique_ptr<SpliceSink> sink = co_await MakeSink(p, dst, resolved, &on_moved, &setup_err);
  if (sink == nullptr) {
    co_return -setup_err;
  }
  out->sqe = sqe;
  out->source = std::move(source);
  out->sink = std::move(sink);
  out->on_moved = std::move(on_moved);
  out->opts = splice_options_;
  out->opts.kop_program = std::move(kprog);
  co_return 0;
}

Task<int> Kernel::RingEnter(Process& p, int ring_id, int to_submit, int min_complete) {
  co_await SyscallEnter(p, "ring_enter");
  SpliceRing* ring = GetRing(p, ring_id);
  if (ring == nullptr) {
    SyscallExit(p, "ring_enter");
    co_return -kAioEBadf;
  }

  int submitted = 0;
  bool sq_full = false;
  while (submitted < to_submit && ring->NextGroupSize() > 0) {
    const int gsize = ring->NextGroupSize();
    // A linked group is admitted whole or not at all; it may round the
    // batch past to_submit.
    while (!ring->CanAdmit(gsize) && ring->config().block_on_full && !p.SignalPending()) {
      co_await cpu_.Sleep(p, ring->SqSpaceChan(), kPriWait, /*interruptible=*/true);
    }
    if (!ring->CanAdmit(gsize)) {
      sq_full = true;
      break;
    }
    std::vector<SpliceSqe> sqes;
    sqes.reserve(gsize);
    for (int i = 0; i < gsize; ++i) {
      sqes.push_back(ring->PopPrepared());
    }
    std::vector<SpliceRing::PreparedOp> ops;
    int bad_index = -1;
    int bad_error = 0;
    for (int i = 0; i < gsize; ++i) {
      SpliceRing::PreparedOp op;
      const int rc = co_await ResolveSqe(p, sqes[i], &op);
      if (rc < 0) {
        bad_index = i;
        bad_error = -rc;
        break;
      }
      ops.push_back(std::move(op));
    }
    if (bad_index >= 0) {
      // The malformed SQE fails with its own error; a partial pipeline
      // cannot run, so the rest of its group fails ECANCELED.  Nothing in
      // the group starts.
      for (int i = 0; i < gsize; ++i) {
        ring->FailSqe(sqes[i], i == bad_index ? bad_error : kAioECanceled);
      }
    } else {
      ring->AdmitGroup(std::move(ops));
    }
    submitted += gsize;
  }
  if (submitted > 0) {
    ring->NoteSubmitBatch(submitted);
  }
  // Endpoint setup and any synchronous-device work above ran in this
  // process's context; charge it here, all under the one trap.
  {
    const SimDuration charge = cache_.TakeSyncCharge() + splice_.TakeSyncCharge();
    if (charge > 0) {
      co_await cpu_.Use(p, charge);
    }
    const SimDuration kcharge = splice_.TakeSyncKopCharge();
    if (kcharge > 0) {
      co_await cpu_.UseKop(p, kcharge);
    }
  }

  if (submitted == 0 && sq_full && !ring->config().block_on_full) {
    ring->NoteEagain();
    SyscallExit(p, "ring_enter");
    co_return -kAioEAgain;
  }

  // Wait for completions — but never for more than can still arrive, so a
  // min_complete above the outstanding count cannot hang the process.
  while (!p.SignalPending()) {
    const int target = std::min(min_complete, ring->CqAvailable() + ring->unfinished());
    if (ring->CqAvailable() >= target) {
      break;
    }
    co_await cpu_.Sleep(p, ring->CqChan(), kPriWait, /*interruptible=*/true);
  }
  SyscallExit(p, "ring_enter");
  co_return submitted;
}

Task<int> Kernel::RingCancel(Process& p, int ring_id, uint64_t cookie) {
  co_await SyscallEnter(p, "ring_cancel");
  SpliceRing* ring = GetRing(p, ring_id);
  const int result = ring == nullptr ? -kAioEBadf : ring->Cancel(cookie);
  SyscallExit(p, "ring_cancel");
  co_return result;
}

// --- signals, timers, pause ---

Task<> Kernel::Pause(Process& p) {
  co_await SyscallEnter(p, "pause");
  while (!p.SignalPending()) {
    co_await cpu_.Sleep(p, &p, kPriWait, /*interruptible=*/true);
  }
  SyscallExit(p, "pause");  // TakeSignals runs the handlers
}

Task<> Kernel::SleepFor(Process& p, SimDuration d) {
  co_await SyscallEnter(p, "sleep");
  struct Flag {
    bool fired = false;
  } flag;
  sim_->After(d, [this, &flag] {
    flag.fired = true;
    cpu_.Wakeup(&flag);
  });
  while (!flag.fired) {
    co_await cpu_.Sleep(p, &flag, kPriWait);
  }
  SyscallExit(p, "sleep");
}

void Kernel::Sigaction(Process& p, int sig, std::function<void()> handler) {
  p.Sigaction(sig, std::move(handler));
}

void Kernel::Setitimer(Process& p, SimDuration interval) {
  Itimer& t = itimers_[&p];
  t.ticks = std::max<int64_t>(1, interval / callouts_.TickDuration());
  if (t.armed) {
    return;  // already ticking; new interval takes effect from the next fire
  }
  t.armed = true;
  Process* proc = &p;
  std::function<void()> fire = [this, proc]() {
    Itimer& timer = itimers_[proc];
    if (!timer.armed) {
      return;
    }
    cpu_.Post(*proc, kSigAlrm);
    timer.callout = callouts_.Timeout([this, proc] { itimers_[proc].Refire(); }, timer.ticks);
  };
  // Store the refire closure so the callout chain can reschedule itself.
  t.refire = std::move(fire);
  t.callout = callouts_.Timeout([this, proc] { itimers_[proc].Refire(); }, t.ticks);
}

void Kernel::StopItimer(Process& p) {
  auto it = itimers_.find(&p);
  if (it == itimers_.end()) {
    return;
  }
  it->second.armed = false;
  if (it->second.callout != kInvalidCalloutId) {
    callouts_.Untimeout(it->second.callout);
    it->second.callout = kInvalidCalloutId;
  }
}

int Kernel::OpenSocket(Process& p, UdpSocket* sock) {
  return Install(p, std::make_shared<SocketFile>(&cpu_, sock));
}

Task<int> Kernel::CreatePipe(Process& p, int* read_fd, int* write_fd) {
  co_await SyscallEnter(p, "pipe");
  auto pipe = std::make_shared<Pipe>();
  *read_fd = Install(p, std::make_shared<PipeEndFile>(&cpu_, pipe, /*read_end=*/true));
  *write_fd = Install(p, std::make_shared<PipeEndFile>(&cpu_, pipe, /*read_end=*/false));
  SyscallExit(p, "pipe");
  co_return 0;
}

}  // namespace ikdp
