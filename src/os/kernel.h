// The Kernel façade: the system-call interface simulated programs use.
//
// Composes the whole machine — CPU/scheduler, callout table, buffer cache,
// filesystems, devices, sockets, and the splice engine — behind a UNIX-ish
// syscall surface.  Programs are coroutines (one per process) that invoke
// these calls with their Process handle:
//
//   int fd = co_await k.Open(p, "disk0:movie.audio", kOpenRead);
//   co_await k.Fcntl(p, fd, /*fasync=*/true);
//   co_await k.Splice(p, fd, dac, kSpliceEof);     // returns immediately
//   co_await k.Pause(p);                           // SIGIO on completion
//
// Every syscall charges the trap overhead, resets the process priority on
// the way out ("return to user mode"), and delivers pending signals.
//
// Paths:  "<fsname>:<filename>" opens a regular file on a mounted
// filesystem; "/dev/<name>" opens a registered character device.  Sockets
// enter a process's descriptor table via OpenSocket.

#ifndef SRC_OS_KERNEL_H_
#define SRC_OS_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/aio/splice_ring.h"
#include "src/buf/buffer_cache.h"
#include "src/dev/char_device.h"
#include "src/fs/filesystem.h"
#include "src/hw/costs.h"
#include "src/kern/cpu.h"
#include "src/kern/ctx.h"
#include "src/kern/lock.h"
#include "src/net/udp_socket.h"
#include "src/sim/callout.h"
#include "src/sim/simulator.h"
#include "src/splice/splice_engine.h"
#include "src/vfs/file.h"

#if IKDP_TSA_ENABLED
// Clang thread-safety bridge: map the klock lock name "ktable" onto the
// SleepLock member that backs it (see src/kern/ctx.h, "TSA BRIDGE").
#define ktable_ikdp_tsa_cap , ktable_lock_
#endif

namespace ikdp {

// splice(2) size argument: "a special value indicates the splice should
// execute until an end of file condition is reached" (paper Section 3).
inline constexpr int64_t kSpliceEof = -1;

class Kernel {
 public:
  // The defaults model the paper's machine: 3.2 MB buffer cache (400 x 8 KB)
  // and hz = 256.
  Kernel(Simulator* sim, CostConfig costs, int nbufs = 400, int hz = 256);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Simulator* sim() { return sim_; }
  CpuSystem& cpu() { return cpu_; }
  CalloutTable& callouts() { return callouts_; }
  BufferCache& cache() { return cache_; }
  SpliceEngine& splice_engine() { return splice_; }

  // Splice flow-control/zero-copy configuration used by Splice(); benches
  // override it for ablations.
  SpliceOptions& splice_options() { return splice_options_; }

  // --- machine setup (host side, no simulated time) ---

  // Attaches `trace` (nullptr detaches) to every layer that records:
  // scheduler/syscalls (CPU), callout table, and — via the per-request
  // refresh in DiskDriver::Strategy — the disk models underneath mounted
  // filesystems.  Recording never advances simulated time, so attaching a
  // log does not perturb an experiment.
  void AttachTrace(TraceLog* trace);

  // Creates and mounts a filesystem named `name` on `dev`.
  FileSystem* MountFs(BlockDevice* dev, const std::string& name);
  FileSystem* FindFs(const std::string& name);

  // All mounted filesystems in mount-name order (deterministic).
  std::vector<FileSystem*> Mounts();

  // Registers `/dev/<name>`.
  void RegisterCharDev(const std::string& name, CharDevice* dev);

  // Spawns a process running `body`.
  Process* Spawn(const std::string& name, std::function<Task<>(Process&)> body);

  // --- system calls ---

  IKDP_CTX_PROCESS Task<int> Open(Process& p, const std::string& path, uint32_t flags);
  IKDP_CTX_PROCESS Task<int> Close(Process& p, int fd);
  IKDP_CTX_PROCESS Task<int64_t> Read(Process& p, int fd, int64_t n, std::vector<uint8_t>* out);
  IKDP_CTX_PROCESS Task<int64_t> Write(Process& p, int fd, const uint8_t* data, int64_t n);
  IKDP_CTX_PROCESS Task<int64_t> Write(Process& p, int fd, const std::vector<uint8_t>& data);
  IKDP_CTX_PROCESS Task<int64_t> Lseek(Process& p, int fd, int64_t offset);
  // dup(2): a new descriptor sharing the same open-file object (offset and
  // flags included).
  IKDP_CTX_PROCESS Task<int> Dup(Process& p, int fd);

  // Sets or clears FASYNC (fcntl(fd, F_SETFL, FASYNC)).
  IKDP_CTX_PROCESS Task<int> Fcntl(Process& p, int fd, bool fasync);
  IKDP_CTX_PROCESS Task<int> FsyncFd(Process& p, int fd);

  // splice(2): moves `nbytes` (or kSpliceEof) from `src_fd` to `dst_fd`
  // entirely in the kernel.  Synchronous unless either descriptor has
  // FASYNC, in which case it returns 0 immediately and SIGIO is posted on
  // completion.  File endpoints require block-aligned offsets.  Returns
  // bytes moved, 0 (async started), or -1 on error.  An operator program
  // attached to either descriptor (kop_attach) runs over every chunk; the
  // source side's program wins when both carry one.
  IKDP_CTX_PROCESS Task<int64_t> Splice(Process& p, int src_fd, int dst_fd, int64_t nbytes);

  // --- in-kernel splice operators (src/kop; see docs/splice_ops.2.md) ---

  // kop_load(2): statically verifies `prog` against the splice chunk size
  // and installs it into the calling process's program table.  Returns a
  // program id (> 0), or -1 when the verifier rejects it.  Verification
  // walks every stage; its cost is charged as in-kernel operator work
  // (the kop.process attribution bucket).
  IKDP_CTX_PROCESS Task<int> KopLoad(Process& p, KopProgram prog);

  // kop_attach(2): binds loaded program `kop_id` to `fd`; 0 detaches.
  // Returns 0, or -1 for a bad descriptor or unknown program id.  Only ids
  // minted by KopLoad exist, so an unverified program can never be bound
  // (the reject-unverified-program rule).
  IKDP_CTX_PROCESS Task<int> KopAttach(Process& p, int fd, int kop_id);

  // splice_multi(2): fan-out splice.  Requires a route-stage program
  // attached to `src_fd` whose SinkCount() equals dst_fds.size(); the
  // operator picks the destination of each chunk.  Regular-file
  // destinations are refused (routing leaves per-sink byte offsets
  // undefined).  Otherwise behaves like Splice(): synchronous unless any
  // endpoint has FASYNC, errno recorded on the source and every
  // destination.
  IKDP_CTX_PROCESS Task<int64_t> SpliceMulti(Process& p, int src_fd,
                                             const std::vector<int>& dst_fds, int64_t nbytes);

  // Loaded-program lookup (ring SQE resolution, tests).
  std::shared_ptr<const KopProgram> GetKopProgram(Process& p, int kop_id);

  // tell(2): the current seek offset of a regular file.  FASYNC programs
  // poll destination offsets with this to learn which of several outstanding
  // splices completed — SIGIO carries no per-operation status, so each poll
  // costs a full trap (the scalability gap the splice ring closes).
  IKDP_CTX_PROCESS Task<int64_t> Tell(Process& p, int fd);

  // Errno of the most recent splice involving `fd` (0 = success), recorded
  // at completion on both endpoints.  This is how a FASYNC program tells an
  // aborted stream from a finished one: SIGIO fires either way and Tell()
  // stops advancing in both cases.  Returns -1 for a bad descriptor.
  IKDP_CTX_PROCESS Task<int> SpliceError(Process& p, int fd);

  // 1 while an asynchronous splice involving `fd` is still in flight, 0 once
  // it has completed (or none was ever started), -1 for a bad descriptor.
  // Socket endpoints have no offset for Tell to poll and splice_error reads
  // 0 both mid-flight and after clean completion, so FASYNC programs feeding
  // sockets probe this after each SIGIO.  Costs a full trap per probe, like
  // Tell.
  IKDP_CTX_PROCESS Task<int> SpliceStatus(Process& p, int fd);

  // --- asynchronous splice ring (see docs/splice_ring.2.md) ---

  // Creates a per-process ring; returns its id (> 0) or -errno.
  IKDP_CTX_PROCESS Task<int> RingSetup(Process& p, const RingConfig& config);

  // Appends an SQE to the ring's submission queue.  A user-memory store:
  // no trap, no charge.  Returns 0 or -kAioEBadf.
  IKDP_CTX_PROCESS int RingPrepare(Process& p, int ring_id, const SpliceSqe& sqe);

  // ONE trap that admits up to `to_submit` prepared SQEs (linked groups are
  // atomic and may round the count up), then waits until at least
  // `min_complete` completions are available to harvest.  Returns the number
  // of SQEs consumed (admitted or failed-with-CQE), or -errno:
  // -kAioEAgain when the SQ cap blocks every admission and the ring is not
  // block_on_full; -kAioEBadf for an unknown ring.  A signal interrupts
  // either wait; the count of already-admitted SQEs is still returned.
  IKDP_CTX_PROCESS Task<int> RingEnter(Process& p, int ring_id, int to_submit, int min_complete);

  // Copies up to `max` posted CQEs into `out`.  A user-memory load from the
  // completion queue: no trap, no charge.  Returns the count or -kAioEBadf.
  IKDP_CTX_PROCESS int RingHarvest(Process& p, int ring_id, SpliceCqe* out, int max);

  // Cancels a queued-but-unstarted op by cookie.  Returns 0, -kAioEBusy,
  // -kAioENoent, or -kAioEBadf.
  IKDP_CTX_PROCESS Task<int> RingCancel(Process& p, int ring_id, uint64_t cookie);

  // Ring lookup (tests, telemetry).
  SpliceRing* GetRing(Process& p, int ring_id);
  std::vector<SpliceRing*> Rings();

  // Blocks until a signal is delivered, then runs its handler(s).
  IKDP_CTX_PROCESS Task<> Pause(Process& p);

  // Suspends the process for a duration (testing convenience; a sleep(3)
  // built on the callout table).
  IKDP_CTX_PROCESS Task<> SleepFor(Process& p, SimDuration d);

  // Installs a signal handler (no trap cost; bookkeeping only).
  void Sigaction(Process& p, int sig, std::function<void()> handler);

  // Arms a periodic interval timer posting SIGALRM (setitimer ITIMER_REAL).
  void Setitimer(Process& p, SimDuration interval);
  void StopItimer(Process& p);

  // Enters `sock` into p's descriptor table (socket(2)+connect(2) stand-in).
  int OpenSocket(Process& p, UdpSocket* sock);

  // pipe(2): creates an in-kernel pipe and installs the read and write
  // descriptors into p's table.  Returns 0 on success.
  IKDP_CTX_PROCESS Task<int> CreatePipe(Process& p, int* read_fd, int* write_fd);

  // Descriptor lookup (tests and endpoint plumbing).  Takes the fd-table
  // lock itself, so the caller must not hold it.
  IKDP_EXCLUDES(ktable) std::shared_ptr<File> GetFile(Process& p, int fd);

  struct Stats {
    uint64_t syscalls = 0;
    uint64_t splices_sync = 0;
    uint64_t splices_async = 0;
    uint64_t kop_loads = 0;          // programs accepted by the verifier
    uint64_t kop_load_failures = 0;  // programs the verifier rejected
    uint64_t kop_attaches = 0;       // successful kop_attach binds (id != 0)
  };
  const Stats& stats() const { return stats_; }

 private:
  struct ProcFiles {
    std::map<int, std::shared_ptr<File>> fds;
    int next_fd = 3;  // 0-2 reserved, as tradition demands
  };

  struct Itimer {
    CalloutId callout = kInvalidCalloutId;
    int64_t ticks = 1;
    bool armed = false;
    std::function<void()> refire;  // reschedules the callout chain

    void Refire() {
      if (refire) {
        refire();
      }
    }
  };

  // Common syscall entry/exit.
  IKDP_CTX_PROCESS Task<> SyscallEnter(Process& p, const char* name);
  IKDP_CTX_PROCESS void SyscallExit(Process& p, const char* name);

  IKDP_EXCLUDES(ktable) int Install(Process& p, std::shared_ptr<File> f);

  // Builds splice endpoints from an open file.  Returns nullptr on
  // unsupported/invalid combinations, with `err` set to why: kErrInval for
  // refusals (alignment, holes, wrong pipe end), kErrIo for an unreadable
  // block map, kErrNoSpc when the destination premap runs the device full.
  // For regular files, consumes and advances the file offset and premaps
  // blocks (in process context).  `sink_is_file` makes stream sources
  // coalesce short deliveries into full blocks, which the file sink's block
  // map requires.
  IKDP_CTX_PROCESS Task<std::unique_ptr<SpliceSource>> MakeSource(
      Process& p, const std::shared_ptr<File>& f, int64_t nbytes, bool sink_is_file,
      int64_t* resolved_bytes, int* err);
  // `on_moved` receives a completion hook that updates sink-side file state
  // (inode size, seek offset) once the byte count is known.
  IKDP_CTX_PROCESS Task<std::unique_ptr<SpliceSink>> MakeSink(
      Process& p, const std::shared_ptr<File>& f, int64_t nbytes,
      std::function<void(int64_t)>* on_moved, int* err);

  // Resolves one SQE into engine endpoints (same validation as Splice).
  // Returns 0 and fills `out`, or -errno.
  IKDP_CTX_PROCESS Task<int> ResolveSqe(Process& p, const SpliceSqe& sqe,
                                        SpliceRing::PreparedOp* out);

  Simulator* sim_;
  CpuSystem cpu_;
  CalloutTable callouts_;
  BufferCache cache_;
  SpliceEngine splice_;
  SpliceOptions splice_options_;

  std::map<std::string, std::unique_ptr<FileSystem>> mounts_;
  std::map<std::string, CharDevice*> char_devs_;
  // The file-table lock (docs/klock.md): the repo's one SleepLock, guarding
  // the per-process descriptor tables.  Every fd-table critical section is
  // short and never suspends, so the non-coroutine syscall helpers take it
  // with AcquireUncontended()/Release() — the coroutine Acquire(cpu, p) path
  // exists for contended SMP futures (tests/lockdep_test.cc exercises it).
  // Outermost rank: it may be held around calls into cache/ring/engine.
  SleepLock ktable_lock_ IKDP_LOCK_RANK(ktable, 10) = SleepLock("ktable", 10);
  std::map<Process*, ProcFiles> files_ IKDP_GUARDED_BY(lock:ktable);
  std::map<Process*, Itimer> itimers_;
  std::map<Process*, std::map<int, std::unique_ptr<SpliceRing>>> rings_;
  int next_ring_id_ = 1;
  // Per-process table of verifier-accepted operator programs (kop_load ids).
  std::map<Process*, std::map<int, std::shared_ptr<const KopProgram>>> kops_;
  int next_kop_id_ = 1;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_OS_KERNEL_H_
