#include "src/kern/ctx.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/sim/lockdep.h"

namespace ikdp {

namespace {
// One simulated CPU, one host thread: a single global tracks the context.
ExecContext g_context = ExecContext::kHost;
}  // namespace

const char* ExecContextName(ExecContext c) {
  switch (c) {
    case ExecContext::kHost:
      return "host";
    case ExecContext::kProcess:
      return "process";
    case ExecContext::kInterrupt:
      return "interrupt";
    case ExecContext::kSoftclock:
      return "softclock";
  }
  return "?";
}

ExecContext CurrentExecContext() { return g_context; }

bool AtInterruptLevel() {
  return g_context == ExecContext::kInterrupt || g_context == ExecContext::kSoftclock;
}

ContextGuard::ContextGuard(ExecContext ctx) : prev_(g_context) { g_context = ctx; }

ContextGuard::~ContextGuard() { g_context = prev_; }

void AssertCanBlock(const char* what) {
  if (AtInterruptLevel()) {
    ContractAbort(
        "%s at %s level: blocking primitives may only run in process context "
        "(IKDP_CTX_PROCESS); an interrupt/softclock path reached a sleep",
        what, ExecContextName(g_context));
  }
  // Every blocking primitive funnels through here, so this is the one
  // dynamic probe lockdep needs for sleep-under-spinlock.
  if (LockdepEnabled()) {
    Lockdep().OnMayBlock(what);
  }
}

void AssertInterruptLevel(const char* what) {
  if (g_context != ExecContext::kInterrupt) {
    ContractAbort(
        "%s in %s context: interrupt CPU accounting is only legal inside a "
        "RunInterrupt body (IKDP_CTX_INTERRUPT)",
        what, ExecContextName(g_context));
  }
}

void ContractAbort(const char* fmt, ...) {
  std::fprintf(stderr, "ikdp contract violation: ");
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace ikdp
