#include "src/kern/lock.h"

#include <algorithm>

namespace ikdp {

namespace {
LockStats g_lock_stats;
LockChargeHook g_charge_hook = nullptr;

void NoteAcquired(int rank) {
  LockStats& s = g_lock_stats;
  ++s.cur_held;
  s.max_held = std::max(s.max_held, s.cur_held);
  s.max_held_rank = std::max(s.max_held_rank, rank);
}
}  // namespace

LockStats& GlobalLockStats() { return g_lock_stats; }

void ResetLockStats() { g_lock_stats = LockStats{}; }

void SetLockChargeHook(LockChargeHook hook) { g_charge_hook = hook; }

void SpinLock::Acquire() {
  if (held_) {
    // A contended spin lock on a uniprocessor is a deadlock: the holder can
    // never run while this context spins.  Under lockdep the validator owns
    // the report (collect mode records it and treats the acquire as a
    // re-entrant no-op so the run can continue).
    if (g_charge_hook != nullptr) {
      g_charge_hook(name_, /*contended=*/true);
    }
    if (LockdepEnabled()) {
      Lockdep().OnAcquire(this, name_, rank_, /*spin=*/true);
      return;
    }
    ContractAbort("SpinLock %s: re-acquired while held (uniprocessor deadlock)", name_);
  }
  ++g_lock_stats.spin_acquisitions;
  NoteAcquired(rank_);
  if (g_charge_hook != nullptr) {
    g_charge_hook(name_, /*contended=*/false);
  }
  if (LockdepEnabled()) {
    Lockdep().OnAcquire(this, name_, rank_, /*spin=*/true);
  }
  held_ = true;
}

void SpinLock::Release() {
  if (!held_) {
    ContractAbort("SpinLock %s: released while not held", name_);
  }
  if (LockdepEnabled()) {
    Lockdep().OnRelease(this, name_);
  }
  held_ = false;
  --g_lock_stats.cur_held;
}

void SleepLock::AcquireUncontended() {
  if (held_) {
    if (g_charge_hook != nullptr) {
      g_charge_hook(name_, /*contended=*/true);
    }
    ContractAbort(
        "SleepLock %s: AcquireUncontended found the lock held — a critical "
        "section spanned a suspension point",
        name_);
  }
  TakeOwnership(/*contended=*/false);
}

void SleepLock::TakeOwnership(bool contended) {
  ++g_lock_stats.sleep_acquisitions;
  NoteAcquired(rank_);
  if (g_charge_hook != nullptr) {
    g_charge_hook(name_, contended);
  }
  if (LockdepEnabled()) {
    // Taking a sleep lock is a may-block point even when it does not sleep:
    // holding a SpinLock here is the sleep-under-spinlock hazard.
    Lockdep().OnMayBlock(name_);
    Lockdep().OnAcquire(this, name_, rank_, /*spin=*/false);
  }
  held_ = true;
}

void SleepLock::ReleaseOwnership() {
  if (!held_) {
    ContractAbort("SleepLock %s: released while not held", name_);
  }
  if (LockdepEnabled()) {
    Lockdep().OnRelease(this, name_);
  }
  held_ = false;
  --g_lock_stats.cur_held;
}

}  // namespace ikdp
