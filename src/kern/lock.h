// Lock primitives for the simulated kernel: SpinLock and SleepLock.
//
// The simulation runs on one host thread, so these locks never spin or
// contend at host level — they install the DISCIPLINE the SMP kernel will
// need (ROADMAP: per-CPU run queues, interrupt steering).  Structures shared
// across the logically-concurrent contexts (process / interrupt / softclock)
// move from pure context-set annotations to `IKDP_GUARDED_BY(lock:<name>)`,
// and both halves of klock check the discipline: tools/kcheck statically
// (acquisition order, guard coverage, sleep-under-spinlock), and the lockdep
// validator (src/sim/lockdep.h) dynamically per run.
//
//  * SpinLock — usable from any context, including interrupt and softclock.
//    Never sleeps.  On a uniprocessor a contended spin lock IS a deadlock
//    (the holder can never run while the acquirer spins), so re-acquisition
//    aborts; critical sections must not span a suspension point (co_await)
//    or a synchronous completion path that re-enters the lock.
//
//  * SleepLock — process context only.  A contended acquire sleeps the
//    process on the lock's channel (standard Sleep/Wakeup, so the contended
//    path rides the existing scheduler cost model); the uncontended path
//    charges nothing.  AcquireUncontended() is for non-suspending critical
//    sections where contention is impossible by construction — it aborts if
//    that reasoning ever breaks.
//
// COST MODEL: the uncontended fast path of both locks charges ZERO simulated
// time — Tables 1 and 2 stay byte-identical with every lock installed
// (bench/perturb_tables proves it across seeds).  SetLockChargeHook installs
// a cost hook for future SMP experiments that want non-zero acquire costs;
// the default (nullptr) is the zero-cost model.
//
// Every lock carries a name and a rank (IKDP_LOCK_RANK annotation on the
// member, same values passed to the constructor).  Ranks order the lock
// hierarchy: lower = outer, and an acquisition must carry a strictly greater
// rank than every lock already held.  The rank table lives in docs/klock.md.

#ifndef SRC_KERN_LOCK_H_
#define SRC_KERN_LOCK_H_

#include <cstdint>

#include "src/kern/ctx.h"
#include "src/sim/lockdep.h"
#include "src/sim/task.h"

namespace ikdp {

// Always-on lock counters (exported as lock.* in ikdp.telemetry.v1).
// Plain increments and max-tracking: no simulated time, no allocation.
struct LockStats {
  uint64_t spin_acquisitions = 0;
  uint64_t sleep_acquisitions = 0;
  // Times a SleepLock acquire found the lock held and slept.  Always zero in
  // the shipped benches: every deployed critical section is non-suspending.
  uint64_t sleep_contention = 0;
  int cur_held = 0;       // locks currently held
  int max_held = 0;       // max locks held simultaneously this run
  int max_held_rank = 0;  // highest rank ever held (0 = none yet)
};

LockStats& GlobalLockStats();
void ResetLockStats();

// Cost-model hook: called on every acquisition with the lock's name and
// whether the acquire contended.  nullptr (the default) charges zero
// simulated time — the tables depend on it.
using LockChargeHook = void (*)(const char* name, bool contended);
void SetLockChargeHook(LockChargeHook hook);

// Sleep priority for SleepLock waiters: between disk I/O and user waits.
inline constexpr int kPriLock = 28;

class IKDP_TSA_CAPABILITY("mutex") SpinLock {
 public:
  constexpr SpinLock(const char* name, int rank) : name_(name), rank_(rank) {}

  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  // Any context.  Aborts on re-acquisition (uniprocessor deadlock) unless
  // lockdep collect mode is recording violations instead.
  void Acquire() IKDP_TSA_ACQUIRE();
  void Release() IKDP_TSA_RELEASE();

  bool held() const { return held_; }
  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  const char* name_;
  int rank_;
  bool held_ = false;
};

// RAII scope for a SpinLock critical section.  Only for non-coroutine
// scopes: a guard living in a coroutine frame would hold the lock across
// co_await, which is sleep-under-spinlock.
class IKDP_TSA_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) IKDP_TSA_ACQUIRE(lock) : lock_(&lock) {
    lock_->Acquire();
  }
  ~SpinGuard() IKDP_TSA_RELEASE() { lock_->Release(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock* lock_;
};

class IKDP_TSA_CAPABILITY("mutex") SleepLock {
 public:
  constexpr SleepLock(const char* name, int rank) : name_(name), rank_(rank) {}

  SleepLock(const SleepLock&) = delete;
  SleepLock& operator=(const SleepLock&) = delete;

  // Process context.  For critical sections that cannot suspend (pure map
  // lookups, descriptor-table edits): contention is impossible by
  // construction, and this aborts if that construction ever breaks.
  IKDP_CTX_PROCESS void AcquireUncontended() IKDP_TSA_ACQUIRE();

  // Process context, may sleep when contended.  Templated on CpuSystem so
  // this header stays at the ctx layer (no src/kern/cpu.h dependency).
  // Thread-safety analysis of the body is off: the acquisition happens
  // through TakeOwnership after zero or more suspensions, a shape the
  // coroutine-frame-blind analysis cannot follow; callers still see the
  // acquire contract.
  template <typename CpuT, typename ProcT>
  IKDP_CTX_PROCESS Task<> Acquire(CpuT* cpu, ProcT& p) IKDP_TSA_ACQUIRE()
      IKDP_TSA_NO_ANALYSIS {
    while (held_) {
      ++GlobalLockStats().sleep_contention;
      co_await cpu->Sleep(p, this, kPriLock, /*interruptible=*/false);
    }
    TakeOwnership(/*contended=*/false);
  }

  // Release with waiter wakeup (pairs with Acquire).
  template <typename CpuT>
  void Release(CpuT* cpu) IKDP_TSA_RELEASE() {
    ReleaseOwnership();
    cpu->Wakeup(this);
  }

  // Release without wakeup (pairs with AcquireUncontended: no waiter can
  // exist when every critical section is non-suspending).
  void Release() IKDP_TSA_RELEASE() { ReleaseOwnership(); }

  bool held() const { return held_; }
  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  void TakeOwnership(bool contended) IKDP_TSA_ACQUIRE();
  void ReleaseOwnership() IKDP_TSA_RELEASE();

  const char* name_;
  int rank_;
  bool held_ = false;
};

}  // namespace ikdp

#endif  // SRC_KERN_LOCK_H_
