// Execution-context discipline: annotations + runtime enforcement.
//
// The paper's design hinges on rules the compiler never sees: b_iodone
// handlers run at interrupt level and must not block, the splice write side
// runs from the callout list at softclock level, and only process context may
// sleep.  This header makes those rules machine-checkable twice over:
//
//  * STATICALLY — the IKDP_CTX_* macros annotate function declarations with
//    the most restrictive context the function must tolerate.  The macro
//    expands to a no-op (on clang, an `annotate` attribute carrying the
//    registry string "ikdp_ctx:<context>"); tools/kcheck reads the macros
//    straight from the source, builds the call graph, and rejects blocking
//    primitives reachable from interrupt/softclock-annotated entry points,
//    un-dominated ChargeInterrupt() calls, and buffer flag-discipline
//    violations.  See docs/kcheck.md for the annotation reference.
//
//  * DYNAMICALLY — ContextGuard tracks the context the simulated kernel is
//    executing in (process / interrupt / softclock / host).  The scheduler
//    and callout table push guards around every dispatch, and the blocking
//    primitives call AssertCanBlock(), so any rule kcheck enforces statically
//    also aborts loudly at runtime if a dynamic path slips past the static
//    call graph (e.g. through a std::function the analyzer cannot follow).
//
// Annotation semantics (the contract, not the observed behaviour):
//
//   IKDP_CTX_PROCESS    may sleep; must only be entered from process context
//                       (a running process coroutine) or host code.
//   IKDP_CTX_INTERRUPT  entered at interrupt level (device completion);
//                       must never reach a blocking primitive.
//   IKDP_CTX_SOFTCLOCK  entered from the callout list at softclock level;
//                       must never reach a blocking primitive.
//   IKDP_CTX_ANY        callable from every context, hence held to the
//                       interrupt rules: must never reach a blocking
//                       primitive.  Also used as an explicit waiver marker —
//                       see docs/kcheck.md for waiver comments.
//
// A function that sometimes runs synchronously in process context (the RAM
// disk completes I/O inside Strategy) and sometimes at interrupt level keeps
// the *stricter* annotation: IKDP_CTX_INTERRUPT / IKDP_CTX_ANY mean "must be
// safe at interrupt level", not "only ever runs there".

#ifndef SRC_KERN_CTX_H_
#define SRC_KERN_CTX_H_

#include <cstdint>

// The annotation macros expand to a no-op attribute carrying the registry
// string.  GCC would warn (-Werror) on the unknown `annotate` attribute, so
// the attribute itself is clang-only; kcheck parses the macro tokens from
// source and never needs the compiled attribute.
#if defined(__clang__)
#define IKDP_CTX_ATTR(ctx) __attribute__((annotate("ikdp_ctx:" ctx)))
#else
#define IKDP_CTX_ATTR(ctx)
#endif

#define IKDP_CTX_PROCESS IKDP_CTX_ATTR("process")
#define IKDP_CTX_INTERRUPT IKDP_CTX_ATTR("interrupt")
#define IKDP_CTX_SOFTCLOCK IKDP_CTX_ATTR("softclock")
#define IKDP_CTX_ANY IKDP_CTX_ATTR("any")

// --- TSA BRIDGE: clang thread-safety (the second, independent checker) ---
//
// Compiled with -DIKDP_CLANG_TSA under clang, the klock annotations below
// stop being inert registry strings and become real -Wthread-safety
// attributes, so the SAME source lines are checked twice by unrelated
// engines: tools/kcheck's path-sensitive walker, and clang's thread-safety
// analysis.  The mapping:
//
//   IKDP_GUARDED_BY(lock:cache) -> __attribute__((guarded_by(lock_)))
//   IKDP_ACQUIRES(cache)        -> __attribute__((acquire_capability(lock_)))
//   IKDP_RELEASES(cache)        -> __attribute__((release_capability(lock_)))
//   IKDP_REQUIRES(cache)        -> __attribute__((requires_capability(lock_)))
//   IKDP_EXCLUDES(cache)        -> __attribute__((locks_excluded(lock_)))
//
// The annotations name LOCKS ("cache"); the attributes need MEMBERS
// ("lock_").  The translation is a token paste: `_ikdp_tsa_cap` is glued
// onto the payload's last token, and every registered lock name defines
// that object-like macro as `, <member>` NEXT TO its lock declaration
// (e.g. `#define cache_ikdp_tsa_cap , lock_` beside BufferCache::lock_).
// The re-expanded comma splits the argument list at the next macro layer,
// where an arity-counting dispatch selects the attribute-emitting branch
// with the member name.  Unregistered payloads — the context sets
// (process, interrupt, ...) that IKDP_GUARDED_BY also accepts — stay one
// token and select the empty branch, so the krace vocabulary is untouched.
// GCC and plain clang builds never see any of this: the machinery exists
// only under the gate.
#if defined(IKDP_CLANG_TSA) && defined(__clang__)
#define IKDP_TSA_ENABLED 1
#else
#define IKDP_TSA_ENABLED 0
#endif

#if IKDP_TSA_ENABLED
// Paste `_ikdp_tsa_cap` onto the LAST payload token (`lock:cache` ->
// `lock : cache_ikdp_tsa_cap`); the rescan then expands the registration.
// Extra arguments (multi-context guard sets) are dropped — they can never
// be lock payloads.
#define IKDP_TSA_PASTE(...) IKDP_TSA_PASTE_I(__VA_ARGS__)
#define IKDP_TSA_PASTE_I(x, ...) x##_ikdp_tsa_cap
// Guard dispatch: a registered `lock:<name>` payload re-split into two
// arguments picks the third slot (the emitter); a context payload stays one
// argument and picks the fourth (empty).
#define IKDP_TSA_GB(...) \
  IKDP_TSA_GB_PICK(__VA_ARGS__, IKDP_TSA_GB_LOCK, IKDP_TSA_GB_CTX, )(__VA_ARGS__)
#define IKDP_TSA_GB_PICK(a, b, c, ...) c
#define IKDP_TSA_GB_LOCK(ignored, member) __attribute__((guarded_by(member)))
#define IKDP_TSA_GB_CTX(...)
// Function-contract payloads are bare lock names, so the paste result is
// exactly `, <member>`: the member is the (empty-preceded) second argument.
// An unregistered name leaves a one-token payload and fails this macro's
// arity check loudly — under TSA every named lock must be registered.
#define IKDP_TSA_FN(attr, ...) IKDP_TSA_FN_I(attr, __VA_ARGS__)
#define IKDP_TSA_FN_I(attr, ignored, member) __attribute__((attr(member)))
// Capability vocabulary for the lock classes themselves (src/kern/lock.h).
#define IKDP_TSA_CAPABILITY(kind) __attribute__((capability(kind)))
#define IKDP_TSA_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#define IKDP_TSA_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define IKDP_TSA_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#define IKDP_TSA_NO_ANALYSIS __attribute__((no_thread_safety_analysis))
#else
#define IKDP_TSA_CAPABILITY(kind)
#define IKDP_TSA_SCOPED_CAPABILITY
#define IKDP_TSA_ACQUIRE(...)
#define IKDP_TSA_RELEASE(...)
#define IKDP_TSA_NO_ANALYSIS
#endif

// --- data-side annotations (the krace vocabulary; see docs/krace.md) ---
//
// Where IKDP_CTX_* states which context may CALL a function, these state
// which context may TOUCH a member.  Both are read by tools/kcheck straight
// from the source; on clang they also expand to `annotate` attributes so
// the registry strings survive into the AST.
//
//   IKDP_GUARDED_BY(ctx, ...)  The member may only be accessed from the
//                              listed contexts (process / interrupt /
//                              softclock, or `any` as shorthand for all
//                              three).  kcheck's guard-violation rule
//                              rejects accesses from a function whose
//                              IKDP_CTX_* annotation resolves outside the
//                              set.  Trails the declarator:
//                                int pending_ IKDP_GUARDED_BY(interrupt) = 0;
//
//   IKDP_ORDERED_BY(channel)   The member is touched from several contexts
//                              but serialized by a named ordering channel
//                              (`callout`, `biodone`, `reaper`, `diskq`)
//                              rather than a context restriction.  kcheck
//                              verifies the channel name is a known one;
//                              the dynamic side (src/sim/krace.h) checks the
//                              serialization actually holds via
//                              ChannelRelease/ChannelAcquire edges.
#if IKDP_TSA_ENABLED
#define IKDP_GUARDED_BY(...) IKDP_TSA_GB(IKDP_TSA_PASTE(__VA_ARGS__))
#define IKDP_ORDERED_BY(channel)
#elif defined(__clang__)
#define IKDP_GUARDED_BY(...) __attribute__((annotate("ikdp_guard:" #__VA_ARGS__)))
#define IKDP_ORDERED_BY(channel) __attribute__((annotate("ikdp_order:" #channel)))
#else
#define IKDP_GUARDED_BY(...)
#define IKDP_ORDERED_BY(channel)
#endif

// --- lock-side annotations (the klock vocabulary; see docs/klock.md) ---
//
// IKDP_GUARDED_BY also accepts a lock payload: `IKDP_GUARDED_BY(lock:cache)`
// means the member may only be touched while the lock named `cache` is held
// (kcheck's lock-guard-violation rule), replacing a pure context set where a
// real lock now protects the structure.  The remaining macros annotate
// functions and lock members:
//
//   IKDP_ACQUIRES(l)       The function returns with lock `l` held (its
//                          caller is responsible for the release).  Leads
//                          the declaration, like IKDP_CTX_*.
//   IKDP_RELEASES(l)       The function requires `l` held on entry and
//                          releases it before returning.
//   IKDP_EXCLUDES(l)       The function must NOT be entered with `l` held
//                          (it acquires `l` itself, or sleeps).  Calling it
//                          while holding `l` is a double-acquire.
//   IKDP_REQUIRES(l)       The function must be entered with lock `l` held
//                          and returns with it still held (the `// lock-
//                          held` helper contract: FreelistPop, Disksort,
//                          UnfinishedLocked, ...).  kcheck seeds the
//                          helper's entry-held set from it — the caller-
//                          intersection fixpoint still proves the same set,
//                          so the macro is documentation the tools verify
//                          from both sides; under IKDP_CLANG_TSA it is the
//                          attribute that lets clang check helper bodies.
//   IKDP_LOCK_RANK(l, n)   Trails a SpinLock/SleepLock member declarator,
//                          declaring its name and rank in the lock
//                          hierarchy (lower = outer; acquisitions must
//                          strictly increase in rank).  The same name/rank
//                          pair is passed to the constructor for the
//                          dynamic side (src/sim/lockdep.h):
//                            SpinLock lock_ IKDP_LOCK_RANK(cache, 40) =
//                                SpinLock("cache", 40);
//   IKDP_ACQUIRED_AFTER(m) Trails a lock member declarator, after its
//                          IKDP_LOCK_RANK: this lock is acquired while the
//                          sibling lock MEMBER `m` is already held.  The
//                          payload is a member name (not a lock name) so
//                          clang's `acquired_after` gets a valid expression;
//                          kcheck resolves the member back to its lock and
//                          rejects declarations whose rank contradicts the
//                          claimed order (a lock-order-cycle finding).
#if IKDP_TSA_ENABLED
#define IKDP_ACQUIRES(l) IKDP_TSA_FN(acquire_capability, IKDP_TSA_PASTE(l))
#define IKDP_RELEASES(l) IKDP_TSA_FN(release_capability, IKDP_TSA_PASTE(l))
#define IKDP_EXCLUDES(l) IKDP_TSA_FN(locks_excluded, IKDP_TSA_PASTE(l))
#define IKDP_REQUIRES(l) IKDP_TSA_FN(requires_capability, IKDP_TSA_PASTE(l))
#define IKDP_LOCK_RANK(l, n) __attribute__((annotate("ikdp_lock_rank:" #l "," #n)))
#define IKDP_ACQUIRED_AFTER(m) __attribute__((acquired_after(m)))
#elif defined(__clang__)
#define IKDP_ACQUIRES(l) __attribute__((annotate("ikdp_acquires:" #l)))
#define IKDP_RELEASES(l) __attribute__((annotate("ikdp_releases:" #l)))
#define IKDP_EXCLUDES(l) __attribute__((annotate("ikdp_excludes:" #l)))
#define IKDP_REQUIRES(l) __attribute__((annotate("ikdp_requires:" #l)))
#define IKDP_LOCK_RANK(l, n) __attribute__((annotate("ikdp_lock_rank:" #l "," #n)))
#define IKDP_ACQUIRED_AFTER(m) __attribute__((annotate("ikdp_acquired_after:" #m)))
#else
#define IKDP_ACQUIRES(l)
#define IKDP_RELEASES(l)
#define IKDP_EXCLUDES(l)
#define IKDP_REQUIRES(l)
#define IKDP_LOCK_RANK(l, n)
#define IKDP_ACQUIRED_AFTER(m)
#endif

// --- error-path annotations (the kpath vocabulary; see docs/kcheck.md) ---
//
//   IKDP_STICKY_ERRNO      Trails an errno-holding member declarator: the
//                          member records the FIRST failure of an operation
//                          and must never be overwritten once nonzero
//                          (docs/faults.md "sticky first error").  Every
//                          nonzero store must be dominated by a zero check:
//                            if (error_ == 0) error_ = out.error;
//                          kcheck's errno-clobber rule walks every CFG path
//                          and rejects stores where the member may already
//                          hold an error.
#if defined(__clang__)
#define IKDP_STICKY_ERRNO __attribute__((annotate("ikdp_sticky_errno")))
#else
#define IKDP_STICKY_ERRNO
#endif

namespace ikdp {

enum class ExecContext : uint8_t {
  kHost = 0,    // outside the simulated kernel: setup, tests, harnesses
  kProcess,     // a process coroutine is executing
  kInterrupt,   // inside a CpuSystem::RunInterrupt body
  kSoftclock,   // dispatching callout-list entries (softclock tick)
};

const char* ExecContextName(ExecContext c);

// The context currently executing.  Single simulated CPU, single host
// thread: one global is exact.
ExecContext CurrentExecContext();

// True at interrupt or softclock level, where blocking is forbidden.
bool AtInterruptLevel();

// RAII context marker.  Guards nest (an interrupt stealing cycles during a
// process burst, a softclock entry body raising to interrupt level); the
// destructor restores the previous context.
class ContextGuard {
 public:
  explicit ContextGuard(ExecContext ctx);
  ~ContextGuard();

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  ExecContext prev_;
};

// Aborts with a clear diagnostic unless the current context may block.
// Called by every blocking primitive (CpuSystem::Sleep / CpuSystem::Use and
// everything built on them); `what` names the primitive for the message.
void AssertCanBlock(const char* what);

// Aborts with a clear diagnostic unless running at interrupt level.  Used by
// ChargeInterrupt(): interrupt CPU accounting outside an interrupt would
// corrupt the ledger silently.
void AssertInterruptLevel(const char* what);

// printf-style abort shared by the context and buffer-state checkers: prints
// "ikdp contract violation: ..." to stderr and calls std::abort(), so the
// failure is loud in every build type (asserts stay on in this tree, but the
// checkers do not even rely on that).
[[noreturn]] void ContractAbort(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ikdp

#endif  // SRC_KERN_CTX_H_
