// A simulated UNIX process.
//
// The process body is a C++20 coroutine (src/sim/task.h) that models the
// program text: it consumes CPU with CpuSystem::Use(), blocks with
// CpuSystem::Sleep(), and performs I/O through the syscall layer (src/os).
// This header holds the scheduling and signal state the kernel keeps per
// process; the descriptor table lives in the VFS layer.

#ifndef SRC_KERN_PROCESS_H_
#define SRC_KERN_PROCESS_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "src/sim/kspan.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace ikdp {

// Scheduling priorities, 4.3BSD style: numerically lower is stronger.
// Processes sleeping in the kernel wake at the priority of the resource they
// waited on, which is how I/O-bound programs preempt CPU hogs.
inline constexpr int kPriSwap = 0;
inline constexpr int kPriBio = 20;    // disk I/O (biowait)
inline constexpr int kPriSock = 24;   // socket buffer waits
inline constexpr int kPriWait = 30;   // pause(), wait()
inline constexpr int kPriUser = 50;   // base user-mode priority

// Signal numbers (the small subset the paper's programs use).
inline constexpr int kSigAlrm = 14;
inline constexpr int kSigIo = 23;

enum class ProcState {
  kEmbryo,    // created, never dispatched
  kRunnable,  // on the run queue
  kRunning,   // owns the CPU
  kSleeping,  // blocked on a channel
  kDead,      // body ran to completion
};

class Process {
 public:
  Process(int pid, std::string name) : pid_(pid), name_(std::move(name)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  int pid() const { return pid_; }
  const std::string& name() const { return name_; }

  ProcState state() const { return state_; }
  bool dead() const { return state_ == ProcState::kDead; }

  // Current scheduling priority (may be boosted by a kernel sleep).
  int priority() const { return priority_; }

  // Restores the base user priority (plus any CPU-usage decay penalty when
  // the scheduler has priority decay enabled); the syscall layer calls this
  // when the process "returns to user mode".
  void ResetPriority() { priority_ = kPriUser + decay_penalty_; }

  // Recent CPU usage estimate (seconds, exponentially decayed) and the user
  // priority penalty derived from it.
  double cpu_estimate() const { return p_cpu_; }
  int decay_penalty() const { return decay_penalty_; }

  // The request span this process is currently serving (kNoSpan between
  // requests).  Survives suspensions — the scheduler re-pushes it onto the
  // kspan cursor at every resume, so a coroutine never holds a KspanScope
  // across co_await.  Set through CpuSystem::SetSpan, which also refreshes
  // the live cursor when the process is running.
  SpanId span() const { return span_; }

  // --- signals ---

  // Installs a handler.  A null function resets to default (ignore).
  void Sigaction(int sig, std::function<void()> handler) {
    if (handler) {
      handler_[sig] = std::move(handler);
    } else {
      handler_.erase(sig);
    }
  }

  bool SignalPending() const { return !pending_signals_.empty(); }

  // Runs and clears all pending signal handlers.  Returns the number of
  // signals taken.  Called by the syscall layer at kernel-exit points.
  int TakeSignals() {
    int taken = 0;
    while (!pending_signals_.empty()) {
      const int sig = *pending_signals_.begin();
      pending_signals_.erase(pending_signals_.begin());
      ++taken;
      auto it = handler_.find(sig);
      if (it != handler_.end()) {
        it->second();
      }
    }
    return taken;
  }

  // --- per-process accounting ---
  struct Stats {
    SimDuration cpu_time = 0;        // CPU granted through Use()
    uint64_t voluntary_switches = 0; // blocked on a channel
    uint64_t involuntary_switches = 0;
    uint64_t signals_taken = 0;
    // Mode-switch ledger: the portion of cpu_time that was pure syscall
    // trap overhead (entry/exit/validation), and how many kernel entries
    // paid it.  A batched submission interface (the splice ring) shows up
    // here as strictly fewer traps for the same amount of I/O.
    SimDuration trap_time = 0;
    uint64_t syscall_traps = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class CpuSystem;

  const int pid_;
  const std::string name_;

  ProcState state_ = ProcState::kEmbryo;
  int priority_ = kPriUser;
  SpanId span_ = kNoSpan;  // request being served; see span()
  double p_cpu_ = 0;        // decayed CPU usage estimate, in seconds
  int decay_penalty_ = 0;   // priority points added to kPriUser

  // Scheduler linkage.  The factory (typically a capturing lambda) must stay
  // alive as long as its coroutine frame: a lambda coroutine's captures live
  // in the closure object, not in the frame.
  std::function<Task<>(Process&)> body_factory_;
  Task<> body_;
  bool started_ = false;
  std::coroutine_handle<> resume_point_;
  SimDuration work_remaining_ = 0;  // outstanding Use() request
  // True while work_remaining_ came from UseKop(): completed bursts are
  // attributed to the kKopProcess bucket.  Frozen while the coroutine is
  // suspended (set at every Use entry), like span_.
  bool kop_charge_ = false;
  const void* sleep_channel_ = nullptr;
  bool sleep_interruptible_ = false;

  std::set<int> pending_signals_;
  std::map<int, std::function<void()>> handler_;

  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_KERN_PROCESS_H_
