#include "src/kern/cpu.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <utility>

#include "src/sim/krace.h"

namespace ikdp {

// Scheduler krace probes: the ledger (stats_) takes only commutative
// additions, and run-queue / interrupt-queue operations from distinct
// same-timestamp events are tie-break freedom — priority order dominates
// FIFO order, and FIFO ties among simultaneous wakers are exactly what the
// schedule-perturbation mode validates (docs/krace.md).  All of these are
// therefore COMMUTE probes; intr_charge_ is a plain WRITE because only the
// single interrupt body executing at a time may touch it.

CpuSystem::CpuSystem(Simulator* sim, CostConfig costs) : sim_(sim), costs_(costs) {}

CpuSystem::~CpuSystem() = default;

bool CpuSystem::ChargeKey::operator<(const ChargeKey& o) const {
  if (bucket != o.bucket) {
    return bucket < o.bucket;
  }
  // Compare subsystem names by content: distinct literals with equal text
  // must land in one entry.
  const int c = std::strcmp(subsystem, o.subsystem);
  if (c != 0) {
    return c < 0;
  }
  return span < o.span;
}

void CpuSystem::Attribute(ChargeBucket bucket, const char* subsystem, SpanId span,
                          SimDuration t) {
  if (t == 0) {
    return;
  }
  attribution_[ChargeKey{bucket, subsystem, span}] += t;
}

void CpuSystem::SetSpan(Process& p, SpanId span) {
  p.span_ = span;
  if (current_ == &p) {
    KspanCursorSetSpan(span);
  }
}

bool CpuSystem::CheckAttributionClosure(std::string* err) const {
  SimDuration sums[kNumChargeBuckets] = {};
  for (const auto& [key, t] : attribution_) {
    sums[static_cast<int>(key.bucket)] += t;
  }
  // Operator buckets are refinements, not new ledger totals: kKopProcess
  // work was granted through Use machinery (process_work), kKopInterrupt /
  // kKopSoftclock through the interrupt engine (interrupt_work).
  const SimDuration process_sum = sums[static_cast<int>(ChargeBucket::kProcess)] +
                                  sums[static_cast<int>(ChargeBucket::kKopProcess)];
  const SimDuration interrupt_sum =
      sums[static_cast<int>(ChargeBucket::kInterrupt)] +
      sums[static_cast<int>(ChargeBucket::kSoftclock)] +
      sums[static_cast<int>(ChargeBucket::kKopInterrupt)] +
      sums[static_cast<int>(ChargeBucket::kKopSoftclock)];
  struct Check {
    const char* what;
    SimDuration attributed;
    SimDuration ledger;
  };
  const Check checks[] = {
      {"process_work", process_sum, stats_.process_work},
      {"context_switch", sums[static_cast<int>(ChargeBucket::kSwitch)], stats_.context_switch},
      {"interrupt_work", interrupt_sum, stats_.interrupt_work},
  };
  for (const Check& c : checks) {
    if (c.attributed != c.ledger) {
      if (err != nullptr) {
        *err = std::string(c.what) + ": attributed " + std::to_string(c.attributed) +
               " ns != ledger " + std::to_string(c.ledger) + " ns";
      }
      return false;
    }
  }
  return true;
}

Process* CpuSystem::Spawn(std::string name, std::function<Task<>(Process&)> factory) {
  auto proc = std::make_unique<Process>(next_pid_++, std::move(name));
  Process* p = proc.get();
  processes_.push_back(std::move(proc));
  p->body_factory_ = std::move(factory);
  p->body_ = p->body_factory_(*p);
  p->state_ = ProcState::kRunnable;
  ++alive_;
  Enqueue(p, /*front=*/false);
  RequestDispatch();
  if (costs_.priority_decay) {
    ArmDecayTimer();
  }
  return p;
}

void CpuSystem::ArmDecayTimer() {
  if (decay_armed_) {
    return;
  }
  decay_armed_ = true;
  sim_->After(costs_.decay_interval, [this] { DecayTick(); });
}

void CpuSystem::DecayTick() {
  decay_armed_ = false;
  for (const auto& owned : processes_) {
    Process* p = owned.get();
    if (p->state_ == ProcState::kDead) {
      continue;
    }
    p->p_cpu_ *= costs_.decay_factor;
    p->decay_penalty_ = std::min<int>(
        costs_.max_decay_penalty,
        static_cast<int>(p->p_cpu_ * costs_.penalty_per_cpu_second));
    // Re-apply to processes sitting at user priority; kernel-boosted
    // sleepers keep their wakeup priority.
    if (p->priority_ >= kPriUser) {
      p->priority_ = kPriUser + p->decay_penalty_;
    }
  }
  // The run queue is priority-ordered; rebuild it under the new priorities.
  std::deque<Process*> old;
  old.swap(run_queue_);
  for (Process* p : old) {
    Enqueue(p, /*front=*/false);
  }
  if (alive_ > 0) {
    ArmDecayTimer();
  }
}

void CpuSystem::AccountUsage(Process* p, SimDuration work) {
  IKDP_KRACE_COMMUTE(this, "CpuSystem::stats_");
  stats_.process_work += work;
  // The coroutine is suspended for the whole burst, so span_ (and the
  // kop_charge_ flag set at Use entry) is frozen at the value the process
  // carried when the burst began.
  if (p->kop_charge_) {
    Attribute(ChargeBucket::kKopProcess, "kop", p->span_, work);
  } else {
    Attribute(ChargeBucket::kProcess, "process", p->span_, work);
  }
  p->stats_.cpu_time += work;
  if (costs_.priority_decay) {
    p->p_cpu_ += ToSeconds(work);
  }
}

void CpuSystem::Enqueue(Process* p, bool front) {
  assert(p->state_ == ProcState::kRunnable);
  if (trace_ != nullptr) {
    trace_->Record(sim_->Now(), TraceKind::kRunnable, p->pid(), 0, p->name().c_str());
  }
  auto pos = run_queue_.begin();
  if (front) {
    while (pos != run_queue_.end() && (*pos)->priority_ < p->priority_) {
      ++pos;
    }
  } else {
    while (pos != run_queue_.end() && (*pos)->priority_ <= p->priority_) {
      ++pos;
    }
  }
  IKDP_KRACE_COMMUTE(this, "CpuSystem::run_queue_");
  run_queue_.insert(pos, p);
}

void CpuSystem::RequestDispatch() {
  if (dispatch_pending_ || current_ != nullptr) {
    return;
  }
  dispatch_pending_ = true;
  sim_->After(0, [this] { DispatchNext(); });
}

void CpuSystem::DispatchNext() {
  dispatch_pending_ = false;
  if (current_ != nullptr || run_queue_.empty()) {
    return;
  }
  IKDP_KRACE_COMMUTE(this, "CpuSystem::run_queue_");
  Process* p = run_queue_.front();
  run_queue_.pop_front();
  current_ = p;
  p->state_ = ProcState::kRunning;
  if (trace_ != nullptr) {
    trace_->Record(sim_->Now(), TraceKind::kDispatch, p->pid(), 0, p->name().c_str());
  }
  // Every dispatch pays the switch cost; if interrupt-level work is still in
  // flight, the process also waits for the CPU to come back.
  const SimDuration residual = std::max<SimDuration>(0, intr_busy_until_ - sim_->Now());
  IKDP_KRACE_COMMUTE(this, "CpuSystem::stats_");
  stats_.context_switch += costs_.context_switch;
  Attribute(ChargeBucket::kSwitch, "sched", p->span_, costs_.context_switch);
  ++stats_.switches;
  slice_remaining_ = costs_.quantum;
  StartBurst(costs_.context_switch + residual, costs_.context_switch);
}

void CpuSystem::StartBurst(SimDuration lead_in, SimDuration switch_part) {
  Process* p = current_;
  assert(p != nullptr && !burst_.active);
  if (slice_remaining_ <= 0) {
    slice_remaining_ = costs_.quantum;
  }
  const SimDuration remaining = p->work_remaining_;
  burst_.active = true;
  burst_.start = sim_->Now();
  burst_.lead_in = lead_in;
  burst_.switch_part = switch_part;
  burst_.stolen = 0;
  burst_.planned = std::min(remaining, slice_remaining_);
  burst_.is_quantum_slice = burst_.planned < remaining;
  burst_.event = sim_->After(lead_in + burst_.planned, [this] { FinishBurst(); });
}

void CpuSystem::FinishBurst() {
  Process* p = current_;
  assert(p != nullptr && burst_.active);
  burst_.active = false;
  AccountUsage(p, burst_.planned);
  p->work_remaining_ -= burst_.planned;
  slice_remaining_ -= burst_.planned;
  if (p->work_remaining_ > 0) {
    // Quantum expired with work left: round-robin among peers of equal (or
    // stronger) priority, otherwise keep the CPU for a fresh quantum.
    if (!run_queue_.empty() && run_queue_.front()->priority_ <= p->priority_) {
      p->state_ = ProcState::kRunnable;
      ++p->stats_.involuntary_switches;
      Enqueue(p, /*front=*/false);
      current_ = nullptr;
      RequestDispatch();
    } else {
      StartBurst(0);
    }
    return;
  }
  Activate(p);
}

void CpuSystem::Activate(Process* p) {
  assert(current_ == p);
  p->state_ = ProcState::kRunning;
  // Everything until the coroutine's next suspension executes as the
  // process: blocking primitives are legal, ChargeInterrupt is not.
  ContextGuard in_process(ExecContext::kProcess);
  // Re-establish the process's request span for this resume window (span
  // scopes cannot live across co_await; see src/sim/kspan.h).
  KspanScope span_scope("process", p->span_);
  if (!p->started_) {
    p->started_ = true;
    p->body_.Start([this, p] {
      // Body ran to completion ("exit").
      p->state_ = ProcState::kDead;
      --alive_;
      assert(current_ == p);
      current_ = nullptr;
      RequestDispatch();
      if (on_exit_) {
        on_exit_(*p);
      }
    });
    return;
  }
  const std::coroutine_handle<> h = p->resume_point_;
  p->resume_point_ = nullptr;
  assert(h && "process has no resume point");
  h.resume();
}

SuspendAndCall CpuSystem::Use(Process& p, SimDuration t) {
  return UseImpl(p, t, /*kop=*/false);
}

SuspendAndCall CpuSystem::UseKop(Process& p, SimDuration t) {
  return UseImpl(p, t, /*kop=*/true);
}

SuspendAndCall CpuSystem::UseImpl(Process& p, SimDuration t, bool kop) {
  AssertCanBlock("CpuSystem::Use");
  assert(t >= 0);
  return SuspendAndCall([this, &p, t, kop](std::coroutine_handle<> h) {
    assert(current_ == &p && "Use() called by a non-running process");
    p.resume_point_ = h;
    p.work_remaining_ = t;
    p.kop_charge_ = kop;
    // A stronger-priority process may have become runnable while this one
    // was executing, or the quantum may have been used up with equal-priority
    // peers waiting; yield at this kernel entry point.
    const bool stronger_waiter =
        !run_queue_.empty() && run_queue_.front()->priority_ < p.priority_;
    const bool quantum_spent = slice_remaining_ <= 0 && !run_queue_.empty() &&
                               run_queue_.front()->priority_ <= p.priority_;
    if (stronger_waiter || quantum_spent) {
      PreemptCurrent(/*front=*/!quantum_spent);
    } else {
      StartBurst(0);
    }
  });
}

SuspendAndCall CpuSystem::Sleep(Process& p, const void* chan, int pri, bool interruptible) {
  AssertCanBlock("CpuSystem::Sleep");
  return SuspendAndCall([this, &p, chan, pri, interruptible](std::coroutine_handle<> h) {
    assert(current_ == &p && "Sleep() called by a non-running process");
    p.resume_point_ = h;
    if (interruptible && p.SignalPending()) {
      // A signal is already pending: do not sleep, resume immediately (after
      // the current event unwinds).
      sim_->After(0, [h, &p] {
        ContextGuard in_process(ExecContext::kProcess);
        KspanScope span_scope("process", p.span());
        h.resume();
      });
      return;
    }
    p.state_ = ProcState::kSleeping;
    p.sleep_channel_ = chan;
    p.sleep_interruptible_ = interruptible;
    p.priority_ = pri;
    if (trace_ != nullptr) {
      trace_->Record(sim_->Now(), TraceKind::kSleep, p.pid(), pri, p.name().c_str());
    }
    ++p.stats_.voluntary_switches;
    current_ = nullptr;
    RequestDispatch();
  });
}

void CpuSystem::PreemptCurrent(bool front) {
  Process* p = current_;
  assert(p != nullptr);
  if (burst_.active) {
    sim_->Cancel(burst_.event);
    const SimDuration progress = (sim_->Now() - burst_.start) - burst_.stolen;
    // The lead-in occupies wall time before any process work: residual
    // interrupt time first (already charged as interrupt work), then the
    // context switch.  A preemption landing inside the lead-in leaves part
    // of the switch charge unconsumed; refund it, or the re-dispatch's full
    // charge double-counts the switch and busy time exceeds elapsed time.
    const SimDuration residual = burst_.lead_in - burst_.switch_part;
    const SimDuration switch_used =
        std::clamp<SimDuration>(progress - residual, 0, burst_.switch_part);
    IKDP_KRACE_COMMUTE(this, "CpuSystem::stats_");
    stats_.context_switch -= burst_.switch_part - switch_used;
    // Mirror the refund under the same key the dispatch charged (span_ is
    // frozen while the coroutine is suspended), keeping closure exact.
    Attribute(ChargeBucket::kSwitch, "sched", p->span_, -(burst_.switch_part - switch_used));
    SimDuration done = progress - burst_.lead_in;
    done = std::clamp<SimDuration>(done, 0, burst_.planned);
    p->work_remaining_ -= done;
    AccountUsage(p, done);
    burst_.active = false;
  }
  p->state_ = ProcState::kRunnable;
  ++p->stats_.involuntary_switches;
  Enqueue(p, front);
  current_ = nullptr;
  RequestDispatch();
}

void CpuSystem::Wakeup(const void* chan) {
  bool woke = false;
  int woken = 0;
  for (const auto& proc : processes_) {
    Process* p = proc.get();
    if (p->state_ == ProcState::kSleeping && p->sleep_channel_ == chan) {
      ++woken;
      p->state_ = ProcState::kRunnable;
      p->sleep_channel_ = nullptr;
      Enqueue(p, /*front=*/false);
      woke = true;
    }
  }
  if (!woke) {
    return;
  }
  if (trace_ != nullptr) {
    trace_->Record(sim_->Now(), TraceKind::kWakeup, woken);
  }
  if (current_ != nullptr && burst_.active &&
      run_queue_.front()->priority_ < current_->priority_) {
    PreemptCurrent(/*front=*/true);
  } else {
    RequestDispatch();
  }
}

void CpuSystem::Post(Process& p, int sig) {
  p.pending_signals_.insert(sig);
  ++p.stats_.signals_taken;
  if (p.state_ == ProcState::kSleeping && p.sleep_interruptible_) {
    p.state_ = ProcState::kRunnable;
    p.sleep_channel_ = nullptr;
    Enqueue(&p, /*front=*/false);
    if (current_ != nullptr && burst_.active &&
        run_queue_.front()->priority_ < current_->priority_) {
      PreemptCurrent(/*front=*/true);
    } else {
      RequestDispatch();
    }
  }
}

void CpuSystem::RunInterrupt(SimDuration overhead, std::function<void()> body) {
  IKDP_KRACE_COMMUTE(this, "CpuSystem::intr_queue_");
  // Capture the attribution tag at raise time: the kspan cursor names the
  // request being worked on, and a raiser at softclock level (a callout
  // body) classifies the work as softclock rather than device interrupt.
  const KspanCursor& cur = CurrentKspan();
  intr_queue_.push_back(PendingInterrupt{overhead, std::move(body), cur.subsystem, cur.span,
                                         CurrentExecContext() == ExecContext::kSoftclock});
  if (!in_interrupt_) {
    DrainInterrupts();
  }
}

void CpuSystem::ChargeInterrupt(SimDuration t) {
  AssertInterruptLevel("CpuSystem::ChargeInterrupt");
  assert(in_interrupt_ && "ChargeInterrupt outside an interrupt body");
  assert(t >= 0);
  IKDP_KRACE_WRITE(this, "CpuSystem::intr_charge_");
  intr_charge_ += t;
  // Handlers refine the cursor as they discover work (the splice read
  // handler pushes the descriptor's span); read it live so each addition
  // lands on the span that caused it.
  const KspanCursor& cur = CurrentKspan();
  Attribute(intr_bucket_, cur.subsystem, cur.span, t);
}

void CpuSystem::ChargeKop(SimDuration t) {
  AssertInterruptLevel("CpuSystem::ChargeKop");
  assert(in_interrupt_ && "ChargeKop outside an interrupt body");
  assert(t >= 0);
  IKDP_KRACE_WRITE(this, "CpuSystem::intr_charge_");
  intr_charge_ += t;
  // Same ledger total as ChargeInterrupt (the time still steals cycles from
  // the running burst and extends intr_busy_until_); only the attribution
  // bucket is finer, matching the context executing the operator.
  const ChargeBucket bucket = intr_bucket_ == ChargeBucket::kSoftclock
                                  ? ChargeBucket::kKopSoftclock
                                  : ChargeBucket::kKopInterrupt;
  const KspanCursor& cur = CurrentKspan();
  Attribute(bucket, "kop", cur.span, t);
}

void CpuSystem::DrainInterrupts() {
  if (intr_queue_.empty()) {
    return;
  }
  const SimTime now = sim_->Now();
  if (now < intr_busy_until_) {
    if (!intr_drain_armed_) {
      intr_drain_armed_ = true;
      sim_->At(intr_busy_until_, [this] {
        intr_drain_armed_ = false;
        DrainInterrupts();
      });
    }
    return;
  }
  IKDP_KRACE_COMMUTE(this, "CpuSystem::intr_queue_");
  PendingInterrupt work = std::move(intr_queue_.front());
  intr_queue_.pop_front();
  in_interrupt_ = true;
  intr_bucket_ = work.softclock ? ChargeBucket::kSoftclock : ChargeBucket::kInterrupt;
  IKDP_KRACE_WRITE(this, "CpuSystem::intr_charge_");
  intr_charge_ = work.overhead;
  Attribute(intr_bucket_, work.subsystem, work.span, work.overhead);
  {
    ContextGuard at_interrupt(ExecContext::kInterrupt);
    // The body runs under the tag captured at raise time; handlers push
    // refining scopes (their ChargeInterrupt additions read the cursor).
    KspanScope tag(work.subsystem, work.span);
    work.body();
  }
  in_interrupt_ = false;
  const SimDuration total = intr_charge_;
  if (trace_ != nullptr) {
    trace_->Record(now, TraceKind::kInterrupt, total);
  }
  IKDP_KRACE_COMMUTE(this, "CpuSystem::stats_");
  stats_.interrupt_work += total;
  ++stats_.interrupts;
  intr_busy_until_ = now + total;
  if (burst_.active) {
    // Steal the interrupt's cycles from the in-progress process burst.
    burst_.stolen += total;
    sim_->Cancel(burst_.event);
    const SimTime end =
        burst_.start + burst_.lead_in + burst_.planned + burst_.stolen;
    burst_.event = sim_->At(end, [this] { FinishBurst(); });
  }
  if (!intr_queue_.empty() && !intr_drain_armed_) {
    intr_drain_armed_ = true;
    sim_->At(intr_busy_until_, [this] {
      intr_drain_armed_ = false;
      DrainInterrupts();
    });
  }
}

}  // namespace ikdp
