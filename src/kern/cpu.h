// The simulated CPU: process scheduling plus interrupt-level work.
//
// One CPU is shared by
//   * processes, dispatched by priority with round-robin among equals and a
//     4.3BSD-style 100 ms quantum, paying a context-switch cost on every
//     switch, and
//   * interrupt-level work (device interrupts, softclock callouts), which
//     *steals* cycles from whatever process is running: an in-progress CPU
//     burst is pushed back by the interrupt's duration.
//
// Processes consume CPU with `co_await cpu.Use(t)` and block with
// `co_await cpu.Sleep(chan, pri)`.  Wakeup(chan) makes sleepers runnable; a
// sleeper waking at a stronger priority than the running process preempts it
// immediately, which is how I/O-bound programs (cp) interleave with CPU
// hogs (the paper's test program).
//
// Interrupt-level work is serialized: overlapping requests queue.  A handler
// body may add to its own cost with ChargeInterrupt() as it discovers work
// (e.g. a RAM-disk copy performed inside biodone).
//
// The accounting identity used by the experiments:
//   elapsed = Σ process work + Σ context switches + Σ interrupt work + idle.

#ifndef SRC_KERN_CPU_H_
#define SRC_KERN_CPU_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/costs.h"
#include "src/kern/ctx.h"
#include "src/kern/process.h"
#include "src/sim/kspan.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace ikdp {

class CpuSystem {
 public:
  CpuSystem(Simulator* sim, CostConfig costs);
  ~CpuSystem();

  CpuSystem(const CpuSystem&) = delete;
  CpuSystem& operator=(const CpuSystem&) = delete;

  const CostConfig& costs() const { return costs_; }
  Simulator* sim() { return sim_; }

  // --- process management ---

  // Creates a process whose body is produced by `factory` (invoked once, with
  // the new process).  The process becomes runnable immediately and starts
  // executing when first dispatched.  The returned pointer stays valid until
  // the CpuSystem is destroyed.
  Process* Spawn(std::string name, std::function<Task<>(Process&)> factory);

  // Number of processes not yet dead.
  int alive() const { return alive_; }

  // Invoked (if set) each time a process body runs to completion.
  void set_on_exit(std::function<void(Process&)> cb) { on_exit_ = std::move(cb); }

  // --- process-context primitives (call only from the running process) ---

  // Consumes `t` of CPU time, competing with other processes and interrupt
  // work.  t == 0 completes without suspending the simulation clock but may
  // still trigger a preemption check.
  IKDP_CTX_PROCESS SuspendAndCall Use(Process& p, SimDuration t);

  // Same machinery as Use(), but the work is in-kernel operator execution
  // (src/kop) performed on behalf of `p`: identical scheduling and ledger
  // totals, attributed to the kKopProcess bucket so the availability tables
  // can show what in-kernel computation costs separately from process work.
  IKDP_CTX_PROCESS SuspendAndCall UseKop(Process& p, SimDuration t);

  // Blocks on `chan` until Wakeup(chan).  On wakeup the process's priority
  // becomes `pri` (kernel sleep priority) until ResetPriority().  If
  // `interruptible` is true, a posted signal also wakes the process.
  IKDP_CTX_PROCESS SuspendAndCall Sleep(Process& p, const void* chan, int pri,
                                        bool interruptible = false);

  // --- callable from any context ---

  // Makes every process sleeping on `chan` runnable.  May preempt the
  // running process if a woken sleeper has a stronger priority.
  IKDP_CTX_ANY void Wakeup(const void* chan);

  // Posts a signal; wakes the process if it is in an interruptible sleep.
  IKDP_CTX_ANY void Post(Process& p, int sig);

  // Runs `body` at interrupt level as soon as the CPU finishes any interrupt
  // work already in progress.  `overhead` is charged before any
  // ChargeInterrupt() additions made by the body.
  IKDP_CTX_ANY void RunInterrupt(SimDuration overhead, std::function<void()> body);

  // Adds `t` to the cost of the interrupt-level work currently executing.
  // Must only be called from within a RunInterrupt body.
  IKDP_CTX_INTERRUPT void ChargeInterrupt(SimDuration t);

  // ChargeInterrupt for in-kernel operator execution (src/kop): same ledger
  // total (interrupt_work) and the same cycle-stealing, but attributed to
  // the kKopInterrupt / kKopSoftclock bucket matching the context that runs
  // the operator, so attribution shows operator cost per request exactly.
  IKDP_CTX_INTERRUPT void ChargeKop(SimDuration t);

  // True while a RunInterrupt body is executing.
  bool InInterrupt() const { return in_interrupt_; }

  // The currently running process, or nullptr (idle / interrupt only).
  Process* current() const { return current_; }

  // Attaches a ktrace-style event log (nullptr detaches; default off).
  void set_trace(TraceLog* trace) { trace_ = trace; }
  TraceLog* trace() const { return trace_; }

  // --- accounting ---

  // Books `t` of trap overhead against `p`'s mode-switch ledger
  // (Process::Stats::trap_time / syscall_traps).  Pure bookkeeping: the
  // caller still charges the time through Use(), so simulated behaviour is
  // unchanged.
  IKDP_CTX_PROCESS void AccountTrap(Process& p, SimDuration t) {
    p.stats_.trap_time += t;
    ++p.stats_.syscall_traps;
  }

  struct Stats {
    SimDuration process_work = 0;     // CPU granted to Use() calls
    SimDuration context_switch = 0;   // switch overhead
    SimDuration interrupt_work = 0;   // interrupt + softclock work
    uint64_t switches = 0;
    uint64_t interrupts = 0;
  };
  // Cumulative since simulation start; harnesses snapshot and diff to get
  // per-interval busy fractions.
  const Stats& stats() const { return stats_; }

  // --- per-span attribution (src/sim/kspan.h) ---
  //
  // Every ledger charge is mirrored into a (context, subsystem, span) map:
  // process bursts carry the running process's span, switch costs the span
  // of the process being dispatched, interrupt/softclock work the kspan
  // cursor at charge time (captured at RunInterrupt for the base overhead,
  // read live for ChargeInterrupt additions).  The mirror is bookkeeping
  // only — it can never change simulated time — and it is EXACT:
  // CheckAttributionClosure() asserts the per-bucket sums equal the Stats
  // totals to the nanosecond, and every table bench runs it.

  // The ledger bucket a charge landed in.  kInterrupt vs kSoftclock is
  // decided by the execution context at RunInterrupt time: work raised from
  // a softclock callout (the splice write side) is softclock work.  The
  // kKop* buckets carve operator execution (src/kop) out of the same three
  // ledger totals: kKopProcess counts into process_work, kKopInterrupt and
  // kKopSoftclock into interrupt_work — the Stats identity is unchanged,
  // only the attribution mirror is finer.
  enum class ChargeBucket : uint8_t {
    kProcess = 0,
    kSwitch,
    kInterrupt,
    kSoftclock,
    kKopProcess,
    kKopInterrupt,
    kKopSoftclock,
  };
  static constexpr int kNumChargeBuckets = 7;

  struct ChargeKey {
    ChargeBucket bucket = ChargeBucket::kProcess;
    const char* subsystem = "";  // static storage, compared by content
    SpanId span = kNoSpan;
    bool operator<(const ChargeKey& o) const;
  };

  // Sets `p`'s request span (Process::span) and, when `p` is the running
  // process, refreshes the live kspan cursor so records written before the
  // next suspension already carry the new span.
  IKDP_CTX_PROCESS void SetSpan(Process& p, SpanId span);

  const std::map<ChargeKey, SimDuration>& attribution() const { return attribution_; }

  // True when the attribution mirror sums exactly to stats_: per-bucket,
  //   Σ kProcess + Σ kKopProcess == process_work,
  //   Σ kSwitch == context_switch,
  //   Σ kInterrupt + Σ kSoftclock + Σ kKopInterrupt + Σ kKopSoftclock
  //     == interrupt_work.
  // On failure fills `err` with the offending bucket and the two totals.
  bool CheckAttributionClosure(std::string* err) const;

 private:
  struct Burst {
    bool active = false;
    SimTime start = 0;            // when the burst began
    SimDuration planned = 0;      // work to complete in this burst
    SimDuration stolen = 0;       // interrupt time overlapping the burst
    SimDuration lead_in = 0;      // context-switch / residual-interrupt lead
    SimDuration switch_part = 0;  // portion of lead_in charged as switch cost
    EventId event = kInvalidEventId;
    bool is_quantum_slice = false;  // burst ends at quantum, work continues
  };

  struct PendingInterrupt {
    SimDuration overhead;
    std::function<void()> body;
    // Attribution tag captured when the interrupt was raised: the kspan
    // cursor, plus whether the raiser ran at softclock level (classifying
    // the work as kSoftclock rather than kInterrupt).  The body runs under
    // this tag; handlers push refining scopes on top.
    const char* subsystem = "";
    SpanId span = kNoSpan;
    bool softclock = false;
  };

  // Inserts `p` into the run queue in priority order (FIFO within equal
  // priority); `front` additionally places it ahead of equals (used when a
  // preempted process should resume first among its peers).
  void Enqueue(Process* p, bool front = false);

  // Schedules a DispatchNext() event if none is pending and the CPU has no
  // running process.
  void RequestDispatch();
  void DispatchNext();

  // Starts executing the current process's outstanding work.  `switch_part`
  // is how much of `lead_in` was charged to the context-switch ledger at
  // dispatch time (refunded pro-rata if the burst is preempted mid-lead-in).
  void StartBurst(SimDuration lead_in, SimDuration switch_part = 0);
  void FinishBurst();

  // Removes the current process from the CPU (burst bookkeeping) and
  // enqueues it as runnable.  `front` as in Enqueue.
  void PreemptCurrent(bool front);

  // Runs queued interrupt work when the CPU reaches intr_busy_until_.
  void DrainInterrupts();

  // 4.3BSD schedcpu(): decays every process's CPU-usage estimate and
  // recomputes user-priority penalties.  Armed while processes are alive
  // and costs().priority_decay is set.
  void ArmDecayTimer();
  void DecayTick();

  // Adds completed work to the running process's usage estimate.
  void AccountUsage(Process* p, SimDuration work);

  // Shared body of Use()/UseKop(); `kop` selects which bucket AccountUsage
  // attributes completed bursts to (Process::kop_charge_).
  SuspendAndCall UseImpl(Process& p, SimDuration t, bool kop);

  // Resumes the process coroutine (first dispatch starts the body).
  void Activate(Process* p);

  Simulator* sim_;
  CostConfig costs_;

  std::vector<std::unique_ptr<Process>> processes_;
  // Mutated by process-context sleeps AND by Wakeup() from interrupt and
  // softclock handlers.  Priority order dominates dispatch; the only
  // same-timestamp sensitivity is FIFO order among simultaneous
  // equal-priority wakers, which is exactly the tie-break freedom the
  // schedule-perturbation mode validates, so the probes in cpu.cc are
  // COMMUTE (see the rationale block there), not plain writes.
  std::deque<Process*> run_queue_ IKDP_GUARDED_BY(any);
  Process* current_ = nullptr;
  Burst burst_;
  // CPU time left in the current process's quantum.  Tracked across bursts
  // so a stream of short Use() calls cannot starve equal-priority peers.
  SimDuration slice_remaining_ = 0;
  bool dispatch_pending_ = false;
  int alive_ = 0;
  int next_pid_ = 1;
  std::function<void(Process&)> on_exit_;

  bool decay_armed_ = false;
  TraceLog* trace_ = nullptr;

  // Interrupt engine.
  std::deque<PendingInterrupt> intr_queue_ IKDP_GUARDED_BY(any);
  SimTime intr_busy_until_ = 0;
  bool intr_drain_armed_ = false;
  bool in_interrupt_ = false;
  // Only the handler currently executing at interrupt level may add to its
  // own charge; ChargeInterrupt() asserts this dynamically too.
  SimDuration intr_charge_ IKDP_GUARDED_BY(interrupt) = 0;

  // Mirrors a charge into the attribution map (see attribution()).  Every
  // stats_ mutation site calls this with the same delta, which is what makes
  // CheckAttributionClosure exact.
  void Attribute(ChargeBucket bucket, const char* subsystem, SpanId span, SimDuration t);

  // The CPU ledger.  Every context books work here; the additions commute
  // (the experiment tables read only the totals), so probes use COMMUTE.
  Stats stats_ IKDP_GUARDED_BY(any);
  // The per-span mirror of stats_.  Same writers, same commutativity
  // argument, host-read-only consumers — GUARDED_BY(any) like the ledger.
  std::map<ChargeKey, SimDuration> attribution_ IKDP_GUARDED_BY(any);
  // Classification of the interrupt work currently draining (which bucket
  // ChargeInterrupt additions land in).  Written only while in_interrupt_.
  ChargeBucket intr_bucket_ IKDP_GUARDED_BY(interrupt) = ChargeBucket::kInterrupt;
};

}  // namespace ikdp

#endif  // SRC_KERN_CPU_H_
