#include "src/vfs/file.h"

#include <algorithm>
#include <cassert>

namespace ikdp {

// --- RegularFile ---

Task<int64_t> RegularFile::Read(Process& p, int64_t n, std::vector<uint8_t>* out) {
  const int64_t got = co_await fs_->Read(p, ip_, offset, n, out);
  offset += got;
  co_return got;
}

Task<int64_t> RegularFile::Write(Process& p, const uint8_t* data, int64_t n) {
  const int64_t put = co_await fs_->Write(p, ip_, offset, data, n);
  offset += put;
  co_return put;
}

Task<> RegularFile::Fsync(Process& p) { co_await fs_->Fsync(p, ip_); }

// --- DeviceFile ---

Task<int64_t> DeviceFile::Read(Process& p, int64_t n, std::vector<uint8_t>* out) {
  out->clear();
  if (!dev_->SupportsRead()) {
    co_return -1;
  }
  if (n <= 0) {
    co_return 0;
  }
  // One outstanding device read, delivered via callback; park until then.
  struct Result {
    BufData data;
    int64_t n = -1;
  } res;
  CpuSystem* cpu = cpu_;
  const bool ok = dev_->ReadAsync(n, [&res, cpu](BufData d, int64_t got) {
    res.data = std::move(d);
    res.n = got;
    cpu->Wakeup(&res);
  });
  if (!ok) {
    co_return -1;  // device busy or not readable
  }
  while (res.n < 0) {
    co_await cpu_->Sleep(p, &res, kPriWait);
  }
  out->assign(res.data->begin(), res.data->begin() + res.n);
  // copyout to user space.
  co_await cpu_->Use(p, cpu_->costs().CopyioTime(res.n));
  p.ResetPriority();
  co_return res.n;
}

Task<int64_t> DeviceFile::Write(Process& p, const uint8_t* data, int64_t n) {
  if (!dev_->SupportsWrite()) {
    co_return -1;
  }
  int64_t done = 0;
  CpuSystem* cpu = cpu_;
  CharDevice* dev = dev_;
  while (done < n) {
    const int64_t chunk = std::min<int64_t>(n - done, kBlockSize);
    // copyin to a kernel chunk.
    auto kbuf = std::make_shared<std::vector<uint8_t>>(data + done, data + done + chunk);
    co_await cpu_->Use(p, cpu_->costs().CopyioTime(chunk));
    // Each accepted chunk wakes the device's write channel when it drains,
    // which is what un-blocks us (and other writers) when the FIFO is full.
    while (!dev_->WriteAsync(kbuf, chunk, [cpu, dev] { cpu->Wakeup(dev->WriteChannel()); })) {
      co_await cpu_->Sleep(p, dev_->WriteChannel(), kPriWait);
    }
    done += chunk;
  }
  p.ResetPriority();
  co_return done;
}

// --- PipeEndFile ---

Task<int64_t> PipeEndFile::Read(Process& p, int64_t n, std::vector<uint8_t>* out) {
  out->clear();
  if (!read_end_ || n <= 0) {
    co_return -1;
  }
  struct Result {
    BufData data;
    int64_t n = -1;
  } res;
  CpuSystem* cpu = cpu_;
  const bool ok = pipe_->ReadAsync(n, [&res, cpu](BufData d, int64_t got) {
    res.data = std::move(d);
    res.n = got;
    cpu->Wakeup(&res);
  });
  if (!ok) {
    co_return -1;  // second concurrent reader, or read end closed
  }
  while (res.n < 0) {
    co_await cpu_->Sleep(p, &res, kPriWait);
  }
  if (res.n > 0) {
    out->assign(res.data->begin(), res.data->begin() + res.n);
    co_await cpu_->Use(p, cpu_->costs().CopyioTime(res.n));
  }
  p.ResetPriority();
  co_return res.n;
}

Task<int64_t> PipeEndFile::Write(Process& p, const uint8_t* data, int64_t n) {
  if (read_end_ || n < 0) {
    co_return -1;
  }
  int64_t done = 0;
  CpuSystem* cpu = cpu_;
  Pipe* pipe = pipe_.get();
  while (done < n) {
    const int64_t chunk = std::min<int64_t>(n - done, kBlockSize);
    auto kbuf = std::make_shared<std::vector<uint8_t>>(data + done, data + done + chunk);
    co_await cpu_->Use(p, cpu_->costs().CopyioTime(chunk));
    while (!pipe->WriteAsync(kbuf, chunk, [cpu, pipe] { cpu->Wakeup(pipe->WriteChannel()); })) {
      if (pipe->read_closed()) {
        p.ResetPriority();
        co_return done > 0 ? done : -1;  // EPIPE
      }
      co_await cpu_->Sleep(p, pipe->WriteChannel(), kPriWait);
    }
    done += chunk;
  }
  p.ResetPriority();
  co_return done;
}

// --- SocketFile ---

Task<int64_t> SocketFile::Read(Process& p, int64_t n, std::vector<uint8_t>* out) {
  out->clear();
  if (n <= 0) {
    co_return 0;
  }
  while (!sock_->HasData()) {
    co_await cpu_->Sleep(p, sock_->RecvChannel(), kPriSock, /*interruptible=*/true);
    if (!sock_->HasData() && p.SignalPending()) {
      p.ResetPriority();
      co_return -1;  // EINTR
    }
  }
  BufData data;
  int64_t got = -1;
  const bool ok = sock_->RecvAsync(n, [&](BufData d, int64_t m) {
    data = std::move(d);
    got = m;
  });
  assert(ok && got >= 0 && "recv must complete synchronously when data is queued");
  (void)ok;
  out->assign(data->begin(), data->begin() + got);
  co_await cpu_->Use(p, cpu_->costs().CopyioTime(got));
  p.ResetPriority();
  co_return got;
}

Task<int64_t> SocketFile::Write(Process& p, const uint8_t* data, int64_t n) {
  assert(n >= 0);  // zero-length datagrams carry the end-of-stream convention
  // copyin + output protocol processing run in the sender's process context.
  auto kbuf = n > 0 ? std::make_shared<std::vector<uint8_t>>(data, data + n)
                    : std::make_shared<std::vector<uint8_t>>();
  co_await cpu_->Use(p, cpu_->costs().CopyioTime(n) + cpu_->costs().UdpPacketTime(n));
  while (!sock_->SendAsync(kbuf, n, nullptr)) {
    co_await cpu_->Sleep(p, sock_->SendChannel(), kPriSock, /*interruptible=*/true);
  }
  p.ResetPriority();
  co_return n;
}

}  // namespace ikdp
