// Open-file objects: the descriptor layer's view of files, character
// devices, and sockets.
//
// A File is what a file descriptor refers to: it carries the open flags
// (including FASYNC, which selects asynchronous splice behaviour), the seek
// offset for regular files, and the read/write syscall implementations as
// process-context coroutines.  Device and socket files adapt the kernel-level
// asynchronous interfaces (src/dev, src/net) with sleep/wakeup.

#ifndef SRC_VFS_FILE_H_
#define SRC_VFS_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/dev/char_device.h"
#include "src/fs/filesystem.h"
#include "src/ipc/pipe.h"
#include "src/kern/cpu.h"
#include "src/kern/ctx.h"
#include "src/kop/kop.h"
#include "src/net/udp_socket.h"
#include "src/sim/task.h"

namespace ikdp {

// open(2) flags (subset).
enum OpenFlags : uint32_t {
  kOpenRead = 1u << 0,
  kOpenWrite = 1u << 1,
  kOpenCreate = 1u << 2,
  kOpenTrunc = 1u << 3,
};

class File {
 public:
  enum class Kind { kRegular, kCharDev, kSocket, kPipe };

  virtual ~File() = default;

  virtual Kind kind() const = 0;

  // Reads up to `n` bytes into `out`; returns bytes read (0 at EOF).
  IKDP_CTX_PROCESS virtual Task<int64_t> Read(Process& p, int64_t n, std::vector<uint8_t>* out) = 0;

  // Writes `n` bytes; returns bytes written.
  IKDP_CTX_PROCESS virtual Task<int64_t> Write(Process& p, const uint8_t* data, int64_t n) = 0;

  // Flushes dirty state to the underlying object (regular files only).
  IKDP_CTX_PROCESS virtual Task<> Fsync(Process& p) {
    (void)p;
    co_return;
  }

  // FASYNC, set with fcntl(): splices involving this file run asynchronously
  // and completion is signalled with SIGIO (paper Section 3).
  bool fasync = false;

  // Errno of the most recent splice involving this file (0 = success),
  // recorded at splice completion on both endpoints.  SIGIO carries no
  // status, so FASYNC callers discover an aborted stream here (the
  // SpliceError syscall); sync callers get the same value alongside -1.
  int splice_error = 0;

  // True while an asynchronous splice involving this file is in flight; set
  // on both endpoints at submission and cleared at completion, before SIGIO
  // posts.  splice_error cannot distinguish "still moving" from "finished
  // clean" (both read 0), and socket endpoints have no offset to poll with
  // Tell, so FASYNC servers driving socket sinks probe this instead (the
  // SpliceStatus syscall).
  bool splice_active = false;

  // Verified operator program bound with kop_attach(2) (null = none).
  // Splice() runs the source side's program, or the sink side's if the
  // source has none.  Only KopLoad-verified programs ever land here —
  // kop_attach refuses anything else (reject-unverified-program).
  std::shared_ptr<const KopProgram> kop_program;
};

// A regular file on a FileSystem.
class RegularFile : public File {
 public:
  RegularFile(FileSystem* fs, Inode* ip) : fs_(fs), ip_(ip) {}

  Kind kind() const override { return Kind::kRegular; }

  IKDP_CTX_PROCESS Task<int64_t> Read(Process& p, int64_t n, std::vector<uint8_t>* out) override;
  IKDP_CTX_PROCESS Task<int64_t> Write(Process& p, const uint8_t* data, int64_t n) override;
  IKDP_CTX_PROCESS Task<> Fsync(Process& p) override;

  FileSystem* fs() { return fs_; }
  Inode* inode() { return ip_; }

  int64_t offset = 0;

 private:
  FileSystem* fs_;
  Inode* ip_;
};

// A character special file.
class DeviceFile : public File {
 public:
  DeviceFile(CpuSystem* cpu, CharDevice* dev) : cpu_(cpu), dev_(dev) {}

  Kind kind() const override { return Kind::kCharDev; }

  IKDP_CTX_PROCESS Task<int64_t> Read(Process& p, int64_t n, std::vector<uint8_t>* out) override;
  IKDP_CTX_PROCESS Task<int64_t> Write(Process& p, const uint8_t* data, int64_t n) override;

  CharDevice* dev() { return dev_; }

 private:
  CpuSystem* cpu_;
  CharDevice* dev_;
};

// One end of a pipe.  Behaves like a character device file for read/write
// (the Pipe implements the CharDevice interface), plus pipe(2) end-of-life
// semantics: dropping the last descriptor for an end closes that end.
class PipeEndFile : public File {
 public:
  // `pipe` is shared by both end files and destroyed with the last of them.
  PipeEndFile(CpuSystem* cpu, std::shared_ptr<Pipe> pipe, bool read_end)
      : cpu_(cpu), pipe_(std::move(pipe)), read_end_(read_end) {}

  ~PipeEndFile() override {
    if (read_end_) {
      pipe_->CloseReadEnd();
    } else {
      pipe_->CloseWriteEnd();
    }
  }

  Kind kind() const override { return Kind::kPipe; }

  IKDP_CTX_PROCESS Task<int64_t> Read(Process& p, int64_t n, std::vector<uint8_t>* out) override;
  IKDP_CTX_PROCESS Task<int64_t> Write(Process& p, const uint8_t* data, int64_t n) override;

  Pipe* pipe() { return pipe_.get(); }
  bool read_end() const { return read_end_; }

 private:
  CpuSystem* cpu_;
  std::shared_ptr<Pipe> pipe_;
  bool read_end_;
};

// A (connected, datagram) socket.
class SocketFile : public File {
 public:
  SocketFile(CpuSystem* cpu, UdpSocket* sock) : cpu_(cpu), sock_(sock) {}

  Kind kind() const override { return Kind::kSocket; }

  IKDP_CTX_PROCESS Task<int64_t> Read(Process& p, int64_t n, std::vector<uint8_t>* out) override;
  IKDP_CTX_PROCESS Task<int64_t> Write(Process& p, const uint8_t* data, int64_t n) override;

  UdpSocket* socket() { return sock_; }

 private:
  CpuSystem* cpu_;
  UdpSocket* sock_;
};

}  // namespace ikdp

#endif  // SRC_VFS_FILE_H_
