// An in-kernel pipe.
//
// The paper positions splice against the streams-based pipe of 8th Edition
// UNIX (Presotto & Ritchie) and Ritchie's streams pseudoterminal: those
// cross-connect *file descriptors* inside the kernel, while "splice, in
// contrast, provides the cross-connection of devices" (Section 2).  This
// pipe completes the picture in the other direction: it implements the
// classic byte-stream pipe as a kernel object exposing the same
// asynchronous interface as character devices and sockets — so a pipe end
// is itself spliceable, giving sendfile-style patterns (file -> pipe ->
// consumer; producer -> pipe -> file) for free.
//
// Semantics follow pipe(2):
//  * a bounded ring of bytes; writes are accepted whole if they fit
//    (callers chunk at <= capacity), refused otherwise;
//  * an accepted write's `done` callback fires when the READER has drained
//    those bytes — that is the back-pressure a blocked writer (or a splice
//    sink) paces itself by;
//  * reads deliver as soon as any bytes are available; with the write end
//    closed and the ring empty they deliver 0 (EOF), which is also the
//    splice end-of-stream convention;
//  * closing the read end breaks the pipe: pending and future writes fail.

#ifndef SRC_IPC_PIPE_H_
#define SRC_IPC_PIPE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/dev/char_device.h"

namespace ikdp {

class Pipe : public CharDevice {
 public:
  explicit Pipe(int64_t capacity_bytes = 32 * 1024);

  const char* Name() const override { return "pipe"; }

  bool SupportsWrite() const override { return true; }
  bool SupportsRead() const override { return true; }

  // CharDevice:
  IKDP_CTX_ANY bool WriteAsync(BufData data, int64_t nbytes, std::function<void()> done) override;
  IKDP_CTX_ANY bool ReadAsync(int64_t max_bytes, std::function<void(BufData, int64_t)> done) override;
  IKDP_CTX_ANY bool CancelRead() override;
  int64_t WriteSpace() const override;

  // End-of-life transitions (driven by descriptor close).
  IKDP_CTX_ANY void CloseWriteEnd();
  IKDP_CTX_ANY void CloseReadEnd();

  bool write_closed() const { return write_closed_; }
  bool read_closed() const { return read_closed_; }
  int64_t Buffered() const { return total_written_ - total_read_; }

  struct Stats {
    int64_t bytes_written = 0;
    uint64_t writes_refused = 0;  // full or broken pipe
  };
  const Stats& stats() const { return stats_; }

 private:
  struct WriteDone {
    int64_t drain_mark;  // fires once total_read_ >= this
    std::function<void()> done;
  };

  // Delivers data (or EOF) to a pending reader if possible, then fires any
  // write completions the drain reached.
  IKDP_CTX_ANY void TryCompleteRead();
  IKDP_CTX_ANY void FireDrainedWrites();

  const int64_t capacity_;
  std::deque<uint8_t> ring_;
  int64_t total_written_ = 0;
  int64_t total_read_ = 0;
  bool write_closed_ = false;
  bool read_closed_ = false;

  bool read_pending_ = false;
  int64_t read_max_ = 0;
  std::function<void(BufData, int64_t)> read_done_;

  std::deque<WriteDone> write_dones_;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_IPC_PIPE_H_
