#include "src/ipc/pipe.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ikdp {

Pipe::Pipe(int64_t capacity_bytes) : capacity_(capacity_bytes) {
  assert(capacity_bytes > 0);
}

int64_t Pipe::WriteSpace() const {
  if (read_closed_ || write_closed_) {
    return 0;
  }
  return capacity_ - Buffered();
}

bool Pipe::WriteAsync(BufData data, int64_t nbytes, std::function<void()> done) {
  assert(nbytes >= 0);
  assert(nbytes <= capacity_ && "chunk larger than the pipe can ever hold");
  if (read_closed_ || write_closed_ || nbytes > WriteSpace()) {
    ++stats_.writes_refused;
    return false;
  }
  if (nbytes > 0) {
    const auto begin = data->begin();
    ring_.insert(ring_.end(), begin, begin + nbytes);
    total_written_ += nbytes;
    stats_.bytes_written += nbytes;
  }
  if (done) {
    write_dones_.push_back(WriteDone{total_written_, std::move(done)});
  }
  TryCompleteRead();
  // A zero-byte write's completion fires as soon as the current backlog
  // drains; if the ring is already empty it fires right away.
  FireDrainedWrites();
  return true;
}

bool Pipe::ReadAsync(int64_t max_bytes, std::function<void(BufData, int64_t)> done) {
  if (read_pending_ || read_closed_ || max_bytes <= 0) {
    return false;
  }
  read_pending_ = true;
  read_max_ = max_bytes;
  read_done_ = std::move(done);
  TryCompleteRead();
  return true;
}

bool Pipe::CancelRead() {
  if (!read_pending_) {
    return false;
  }
  // The parked reader's callback is dropped, never invoked; buffered bytes
  // stay in the ring for any future reader.
  read_pending_ = false;
  read_done_ = nullptr;
  read_max_ = 0;
  return true;
}

void Pipe::TryCompleteRead() {
  if (!read_pending_) {
    return;
  }
  const int64_t avail = Buffered();
  if (avail == 0 && !write_closed_) {
    return;  // wait for data
  }
  read_pending_ = false;
  auto done = std::move(read_done_);
  read_done_ = nullptr;
  if (avail == 0) {
    done(MakeBufData(), 0);  // EOF
    return;
  }
  const int64_t n = std::min(avail, read_max_);
  BufData out = std::make_shared<std::vector<uint8_t>>(ring_.begin(), ring_.begin() + n);
  ring_.erase(ring_.begin(), ring_.begin() + n);
  total_read_ += n;
  done(std::move(out), n);
  FireDrainedWrites();
}

void Pipe::FireDrainedWrites() {
  while (!write_dones_.empty() && write_dones_.front().drain_mark <= total_read_) {
    auto done = std::move(write_dones_.front().done);
    write_dones_.pop_front();
    done();
  }
}

void Pipe::CloseWriteEnd() {
  write_closed_ = true;
  // A reader parked on an empty pipe now sees EOF.
  TryCompleteRead();
}

void Pipe::CloseReadEnd() {
  read_closed_ = true;
  // Nobody will drain the ring: discard it and release blocked writers
  // (their data is lost, as with a real broken pipe).
  total_read_ = total_written_;
  ring_.clear();
  FireDrainedWrites();
}

}  // namespace ikdp
