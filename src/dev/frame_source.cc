#include "src/dev/frame_source.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace ikdp {

FrameSource::FrameSource(Simulator* sim, std::string name, int64_t frame_bytes,
                         SimDuration frame_interval)
    : sim_(sim),
      name_(std::move(name)),
      frame_bytes_(frame_bytes),
      frame_interval_(frame_interval) {
  assert(frame_bytes > 0 && frame_interval > 0);
}

void FrameSource::FillFrame(int64_t n, int64_t nbytes, std::vector<uint8_t>* out) {
  out->resize(static_cast<size_t>(nbytes));
  for (int64_t i = 0; i < nbytes; ++i) {
    (*out)[static_cast<size_t>(i)] = static_cast<uint8_t>((n * 131 + i) & 0xff);
  }
}

bool FrameSource::ReadAsync(int64_t max_bytes, std::function<void(BufData, int64_t)> done) {
  if (request_pending_ || max_bytes <= 0) {
    return false;
  }
  request_pending_ = true;
  request_max_ = max_bytes;
  request_done_ = std::move(done);
  // The next frame boundary: frames scan out at t = k * frame_interval.
  // Mid-frame read positions deliver from the frame currently scanned.
  const SimTime now = sim_->Now();
  if (frame_offset_ > 0 || now >= (frames_produced_ + 1) * frame_interval_) {
    // A frame is in progress or already complete: deliver immediately.
    sim_->After(0, [this] { DeliverChunk(); });
  } else {
    const SimTime next_frame = (frames_produced_ + 1) * frame_interval_;
    sim_->At(next_frame, [this] { DeliverChunk(); });
  }
  return true;
}

void FrameSource::DeliverChunk() {
  assert(request_pending_);
  const int64_t n = std::min(request_max_, frame_bytes_ - frame_offset_);
  BufData data = MakeBufData();
  data->resize(static_cast<size_t>(n));
  const int64_t frame_no = frames_produced_;
  for (int64_t i = 0; i < n; ++i) {
    (*data)[static_cast<size_t>(i)] =
        static_cast<uint8_t>((frame_no * 131 + frame_offset_ + i) & 0xff);
  }
  frame_offset_ += n;
  if (frame_offset_ >= frame_bytes_) {
    frame_offset_ = 0;
    ++frames_produced_;
  }
  request_pending_ = false;
  auto done = std::move(request_done_);
  request_done_ = nullptr;
  done(std::move(data), n);
}

}  // namespace ikdp
