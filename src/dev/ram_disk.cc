#include "src/dev/ram_disk.h"

#include <algorithm>
#include <cassert>

namespace ikdp {

RamDisk::RamDisk(CpuSystem* cpu, int64_t capacity_bytes)
    : cpu_(cpu),
      capacity_blocks_(capacity_bytes / kBlockSize),
      core_(static_cast<size_t>(capacity_blocks_ * kBlockSize), 0) {
  assert(capacity_blocks_ > 0);
}

SimDuration RamDisk::Strategy(Buf& b) {
  assert(b.blkno >= 0 && b.blkno < capacity_blocks_);
  const size_t off = static_cast<size_t>(b.blkno * kBlockSize);
  const size_t n = static_cast<size_t>(b.bcount);
  assert(off + n <= core_.size());
  SimDuration copy = 0;
  if (b.Has(kBufRead)) {
    ++stats_.reads;
    // Zero-copy read: the buffer maps the block's core directly.  (The
    // simulation materializes the bytes host-side; no simulated time.)
    if (b.data != nullptr) {
      std::copy_n(core_.begin() + off, n, b.data->begin());
    }
  } else {
    ++stats_.writes;
    if (b.data != nullptr) {
      std::copy_n(b.data->begin(), n, core_.begin() + off);
    }
    copy = cpu_->costs().BcopyTime(b.bcount);
    stats_.copy_time += copy;
  }
  // Synchronous completion: the data is already in place by the time the
  // bcopy (if any) finishes in the caller's context.
  Biodone(b);
  return copy;
}

void RamDisk::PokeBlock(int64_t blkno, const std::vector<uint8_t>& data) {
  assert(blkno >= 0 && blkno < capacity_blocks_);
  assert(static_cast<int64_t>(data.size()) <= kBlockSize);
  const size_t off = static_cast<size_t>(blkno * kBlockSize);
  std::fill_n(core_.begin() + off, kBlockSize, 0);
  std::copy(data.begin(), data.end(), core_.begin() + off);
}

std::vector<uint8_t> RamDisk::PeekBlock(int64_t blkno) const {
  assert(blkno >= 0 && blkno < capacity_blocks_);
  const size_t off = static_cast<size_t>(blkno * kBlockSize);
  return std::vector<uint8_t>(core_.begin() + off, core_.begin() + off + kBlockSize);
}

}  // namespace ikdp
