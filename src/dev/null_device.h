// /dev/null: an infinitely fast sink, useful in tests and ablations to
// isolate source-side behaviour (everything written is accepted immediately
// and consumed in zero device time).

#ifndef SRC_DEV_NULL_DEVICE_H_
#define SRC_DEV_NULL_DEVICE_H_

#include <cstdint>
#include <limits>
#include <utility>

#include "src/dev/char_device.h"
#include "src/sim/simulator.h"

namespace ikdp {

class NullDevice : public CharDevice {
 public:
  explicit NullDevice(Simulator* sim) : sim_(sim) {}

  const char* Name() const override { return "null"; }

  bool SupportsWrite() const override { return true; }

  IKDP_CTX_ANY bool WriteAsync(BufData data, int64_t nbytes, std::function<void()> done) override {
    (void)data;
    bytes_sunk_ += nbytes;
    sim_->After(0, [done = std::move(done)] {
      if (done) {
        done();
      }
    });
    return true;
  }

  int64_t WriteSpace() const override { return std::numeric_limits<int64_t>::max(); }

  int64_t bytes_sunk() const { return bytes_sunk_; }

 private:
  Simulator* sim_;
  int64_t bytes_sunk_ = 0;
};

}  // namespace ikdp

#endif  // SRC_DEV_NULL_DEVICE_H_
