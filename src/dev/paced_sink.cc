#include "src/dev/paced_sink.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ikdp {

PacedSink::PacedSink(Simulator* sim, std::string name, double rate_bps, int64_t fifo_bytes)
    : sim_(sim), name_(std::move(name)), rate_bps_(rate_bps), fifo_bytes_(fifo_bytes) {
  assert(rate_bps > 0 && fifo_bytes > 0);
}

int64_t PacedSink::Backlog() const {
  const SimTime now = sim_->Now();
  if (drain_frontier_ <= now) {
    return 0;
  }
  return static_cast<int64_t>(ToSeconds(drain_frontier_ - now) * rate_bps_);
}

int64_t PacedSink::WriteSpace() const { return std::max<int64_t>(0, fifo_bytes_ - Backlog()); }

bool PacedSink::WriteAsync(BufData data, int64_t nbytes, std::function<void()> done) {
  (void)data;  // contents are "played", not stored
  assert(nbytes > 0);
  if (Backlog() + nbytes > fifo_bytes_) {
    return false;
  }
  const SimTime start = std::max(sim_->Now(), drain_frontier_);
  drain_frontier_ = start + TransferTime(nbytes, rate_bps_);
  bytes_accepted_ += nbytes;
  sim_->At(drain_frontier_, [done = std::move(done)] {
    if (done) {
      done();
    }
  });
  return true;
}

}  // namespace ikdp
