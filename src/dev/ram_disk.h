// RAM disk block-device driver (paper Section 6.1).
//
// "The ram disk driver uses 16MB of statically allocated memory from the
// kernel's BSS region."  There is no seek, no rotation, and no completion
// interrupt; Strategy() completes the buffer synchronously (via Biodone
// before returning) and reports the transfer's CPU cost as the caller's
// charge.
//
// Reads are zero-copy: the driver can point the buffer at the block's
// location in its core (kernel BSS is directly addressable), so a read
// charges no copy time.  Writes bcopy the buffer's data area into the core
// at the kernel block-copy rate.  This asymmetry is what the paper's RAM
// rows require: the splice data path then performs exactly ONE memory copy
// per block (the destination write), while cp performs three (copyout,
// copyin, destination write).

#ifndef SRC_DEV_RAM_DISK_H_
#define SRC_DEV_RAM_DISK_H_

#include <cstdint>
#include <vector>

#include "src/buf/buf.h"
#include "src/kern/cpu.h"

namespace ikdp {

class RamDisk : public BlockDevice {
 public:
  RamDisk(CpuSystem* cpu, int64_t capacity_bytes);

  // BlockDevice:
  IKDP_CTX_ANY SimDuration Strategy(Buf& b) override;
  int64_t CapacityBlocks() const override { return capacity_blocks_; }
  const char* Name() const override { return "RAM"; }

  // BlockDevice content access (untimed).
  void PokeBlock(int64_t blkno, const std::vector<uint8_t>& data) override;
  std::vector<uint8_t> PeekBlock(int64_t blkno) const override;

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    SimDuration copy_time = 0;  // CPU charged to callers
  };
  const Stats& stats() const { return stats_; }

 private:
  CpuSystem* cpu_;
  int64_t capacity_blocks_;
  std::vector<uint8_t> core_;  // the "statically allocated" backing store
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_DEV_RAM_DISK_H_
