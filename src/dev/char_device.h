// Character special devices.
//
// The paper's splice connects files and devices; its example (Section 4)
// writes digitized audio to /dev/speaker and video frames to /dev/video_dac,
// and the implementation also supports framebuffer-to-socket splices.  These
// devices present a kernel-level asynchronous interface that both the
// read()/write() syscall path (wrapped with sleep/wakeup by the VFS layer)
// and the splice engine (callback-driven) use:
//
//  * WriteAsync: offer a chunk; the device accepts it if it has buffer
//    space and fires `done` when the chunk has been consumed (e.g. played
//    out by the DAC clock).  Returns false when full — retry from `done`.
//  * ReadAsync: request a chunk; the device fires `done` with data when it
//    has some (e.g. the next scanned-out frame).  Returns false when the
//    direction is unsupported or a request is already pending.

#ifndef SRC_DEV_CHAR_DEVICE_H_
#define SRC_DEV_CHAR_DEVICE_H_

#include <cstdint>
#include <functional>

#include "src/buf/buf.h"
#include "src/kern/ctx.h"

namespace ikdp {

class CharDevice {
 public:
  virtual ~CharDevice() = default;

  virtual const char* Name() const = 0;

  // Direction capabilities; the descriptor layer fails unsupported
  // operations up front instead of blocking forever.
  virtual bool SupportsWrite() const { return false; }
  virtual bool SupportsRead() const { return false; }

  // Offers `nbytes` of `data` to the device.  When accepted, `done` fires
  // once the device has consumed them and can take more.  Returns false
  // (nothing scheduled) if the device cannot accept right now or does not
  // support writing.
  IKDP_CTX_ANY virtual bool WriteAsync(BufData data, int64_t nbytes, std::function<void()> done) {
    (void)data;
    (void)nbytes;
    (void)done;
    return false;
  }

  // Requests up to `max_bytes`.  When data is available `done` fires with a
  // buffer and the byte count.  Returns false if reading is unsupported or a
  // request is already outstanding.
  IKDP_CTX_ANY virtual bool ReadAsync(int64_t max_bytes, std::function<void(BufData, int64_t)> done) {
    (void)max_bytes;
    (void)done;
    return false;
  }

  // Drops the outstanding ReadAsync, if any; its `done` will never fire.
  // Returns true when a pending read was dropped.  Used by splice teardown
  // so a reader blocked on a quiet producer does not pin the stream.
  IKDP_CTX_ANY virtual bool CancelRead() { return false; }

  // Bytes of internal buffer space currently free for writes (0 for pure
  // sources).  Lets writers size their chunks.
  virtual int64_t WriteSpace() const { return 0; }

  // Wakeup channel a blocked writer sleeps on; the `done` callback of each
  // accepted WriteAsync is expected to wake it as space frees up.
  virtual const void* WriteChannel() const { return this; }
};

}  // namespace ikdp

#endif  // SRC_DEV_CHAR_DEVICE_H_
