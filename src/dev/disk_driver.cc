#include "src/dev/disk_driver.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/sim/krace.h"

namespace ikdp {

// Elevator-queue krace probes are COMMUTE: disksort places each request by
// block number regardless of arrival order, the single-issue handshake is
// enforced by hw_busy_ itself, and the one order-sensitive residue — which
// of two same-timestamp submitters lands first when their blocks tie — is
// tie-break freedom validated by the schedule-perturbation mode
// (docs/krace.md).  The `diskq` channel carries the submit -> issue edge
// for the declared IKDP_ORDERED_BY(diskq) queue.

DiskDriver::DiskDriver(CpuSystem* cpu, Simulator* sim, DiskParams params)
    : cpu_(cpu), disk_(sim, std::move(params)) {}

int64_t DiskDriver::CapacityBlocks() const {
  return disk_.params().capacity_bytes / kBlockSize;
}

SimDuration DiskDriver::Strategy(Buf& b) {
  assert(b.blkno >= 0 && b.blkno < CapacityBlocks());
  ++stats_.requests;
  // The DiskModel lives below the kernel layers and cannot see the CPU's
  // trace; refresh its pointer here so a log attached mid-run (or detached)
  // takes effect from the next request on.
  disk_.set_trace(cpu_->trace());
  if (TraceLog* t = cpu_->trace()) {
    t->Record(cpu_->sim()->Now(), TraceKind::kDiskEnqueue, b.blkno * kBlockSize, b.bcount,
              b.Has(kBufRead) ? "read" : "write");
  }
  lock_.Acquire();
  Disksort(&b);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, QueueDepthLocked());
  if (!hw_busy_) {
    StartHw();
  }
  lock_.Release();
  // DMA hardware: the caller pays nothing beyond the generic driver-start
  // cost the buffer cache already charges.
  return 0;
}

void DiskDriver::Disksort(Buf* b) {
  // 4.2BSD disksort: one-way elevator.  Requests at or beyond the last
  // issued block sort ascending in the current sweep; requests behind it go
  // into a second ascending run serviced on the next sweep.
  const int64_t pivot = last_issued_blkno_;
  auto run_of = [pivot](const Buf* x) { return x->blkno >= pivot ? 0 : 1; };
  const int my_run = run_of(b);
  auto pos = queue_.begin();
  while (pos != queue_.end()) {
    const int r = run_of(*pos);
    if (r > my_run || (r == my_run && (*pos)->blkno > b->blkno)) {
      break;
    }
    ++pos;
  }
  if (pos != queue_.end() || (!queue_.empty() && my_run == 0)) {
    ++stats_.sort_passes;
  }
  IKDP_KRACE_COMMUTE(this, "DiskDriver::queue_");
  queue_.insert(pos, b);
  if (KraceEnabled()) Krace().ChannelRelease(&queue_);
}

void DiskDriver::StartHw() {
  if (KraceEnabled()) Krace().ChannelAcquire(&queue_);
  IKDP_KRACE_COMMUTE(this, "DiskDriver::hw_busy_");
  if (queue_.empty()) {
    hw_busy_ = false;
    return;
  }
  hw_busy_ = true;
  IKDP_KRACE_COMMUTE(this, "DiskDriver::queue_");
  Buf* b = queue_.front();
  queue_.pop_front();
  last_issued_blkno_ = b->blkno;
  DiskRequest req;
  req.offset = b->blkno * kBlockSize;
  req.nbytes = b->bcount;
  req.is_read = b->Has(kBufRead);
  req.span = b->span;  // rides the hardware queue for dispatch/complete tagging
  req.done = [this, b](bool ok) { Complete(b, ok, ok ? 0 : disk_.last_error()); };
  disk_.Submit(std::move(req));
}

void DiskDriver::Complete(Buf* b, bool ok, int error) {
  ++stats_.interrupts;
  // The completion interrupt belongs to the request whose buffer this is:
  // the scope covers the RunInterrupt call, so the interrupt overhead (and,
  // via the captured tag, the body's charges) attribute to b->span.
  KspanScope scope("disk", b->span);
  cpu_->RunInterrupt(cpu_->costs().interrupt_overhead, [this, b, ok, error] {
    if (!ok) {
      // Unrecoverable media error: no content moves; the error flag and
      // errno ride the buffer up through biodone to whoever waits on it.
      b->error = error != 0 ? error : kErrIo;
      b->Set(kBufError);
      // Biodone with the queue lock dropped: completion handlers re-enter
      // Strategy (splice refill through the cache) and take cache-side locks
      // that rank outside diskq.
      Biodone(*b);
      lock_.Acquire();
      StartHw();
      lock_.Release();
      return;
    }
    // Move content at completion: reads fill the buffer, writes persist it.
    if (b->Has(kBufRead)) {
      auto it = store_.find(b->blkno);
      if (b->data != nullptr) {
        if (it != store_.end()) {
          std::copy(it->second.begin(), it->second.end(), b->data->begin());
        } else {
          std::fill(b->data->begin(), b->data->end(), 0);
        }
      }
    } else if (b->data != nullptr) {
      store_[b->blkno] = *b->data;
    }
    Biodone(*b);
    lock_.Acquire();
    StartHw();
    lock_.Release();
  });
}

void DiskDriver::PokeBlock(int64_t blkno, const std::vector<uint8_t>& data) {
  assert(static_cast<int64_t>(data.size()) <= kBlockSize);
  auto& blk = store_[blkno];
  blk.assign(kBlockSize, 0);
  std::copy(data.begin(), data.end(), blk.begin());
}

std::vector<uint8_t> DiskDriver::PeekBlock(int64_t blkno) const {
  auto it = store_.find(blkno);
  if (it == store_.end()) {
    return std::vector<uint8_t>(kBlockSize, 0);
  }
  return it->second;
}

}  // namespace ikdp
