// A rate-paced output device: the model for audio and video DACs.
//
// "The program assumes the audio DAC driver converts and delivers audio at
// the appropriate playback rate to match the recording rate in the file.
// Several audio device interfaces (e.g. Sun's /dev/audio) operate in this
// fashion."  (paper Section 4)
//
// The device holds a FIFO of `fifo_bytes`; accepted chunks drain at
// `rate_bps`.  A WriteAsync completes (fires `done`) when its bytes have
// fully drained, which is exactly the natural pacing a splice to the device
// inherits: the flow-control watermarks keep the FIFO topped up and the
// splice proceeds at playback speed.

#ifndef SRC_DEV_PACED_SINK_H_
#define SRC_DEV_PACED_SINK_H_

#include <cstdint>
#include <string>

#include "src/dev/char_device.h"
#include "src/sim/simulator.h"

namespace ikdp {

class PacedSink : public CharDevice {
 public:
  PacedSink(Simulator* sim, std::string name, double rate_bps, int64_t fifo_bytes);

  const char* Name() const override { return name_.c_str(); }

  bool SupportsWrite() const override { return true; }
  IKDP_CTX_ANY bool WriteAsync(BufData data, int64_t nbytes, std::function<void()> done) override;
  int64_t WriteSpace() const override;

  // Total bytes ever consumed by the DAC clock side.
  int64_t bytes_consumed() const { return bytes_accepted_ - Backlog(); }
  int64_t bytes_accepted() const { return bytes_accepted_; }

  double rate_bps() const { return rate_bps_; }

 private:
  // Bytes currently sitting in the FIFO.
  int64_t Backlog() const;

  Simulator* sim_;
  std::string name_;
  double rate_bps_;
  int64_t fifo_bytes_;
  // The virtual time at which everything accepted so far will have drained.
  SimTime drain_frontier_ = 0;
  int64_t bytes_accepted_ = 0;
};

}  // namespace ikdp

#endif  // SRC_DEV_PACED_SINK_H_
