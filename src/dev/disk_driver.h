// SCSI disk block-device driver.
//
// Sits between the buffer cache and a DiskModel (src/hw/disk.h).  The
// strategy routine inserts requests into a cyclical elevator queue
// (4.2BSD disksort()) and feeds the hardware one request at a time; each
// hardware completion raises a device interrupt that is charged to the CPU
// (interrupt stealing) and then delivers Biodone() on the buffer.
//
// The driver also owns the *contents* of the device, a sparse block store,
// so files written through the simulator can be read back and verified
// byte-for-byte.  Content moves at completion time; timing comes from the
// DiskModel.

#ifndef SRC_DEV_DISK_DRIVER_H_
#define SRC_DEV_DISK_DRIVER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/buf/buf.h"
#include "src/hw/disk.h"
#include "src/kern/cpu.h"
#include "src/kern/lock.h"

#if IKDP_TSA_ENABLED
// Clang thread-safety bridge: map the klock lock name "diskq" onto the
// SpinLock member that backs it (see src/kern/ctx.h, "TSA BRIDGE").
#define diskq_ikdp_tsa_cap , lock_
#endif

namespace ikdp {

class DiskDriver : public BlockDevice {
 public:
  DiskDriver(CpuSystem* cpu, Simulator* sim, DiskParams params);

  // BlockDevice:
  IKDP_CTX_ANY SimDuration Strategy(Buf& b) override;
  int64_t CapacityBlocks() const override;
  const char* Name() const override { return disk_.params().name.c_str(); }

  DiskModel& disk() { return disk_; }

  // BlockDevice content access (untimed).
  void PokeBlock(int64_t blkno, const std::vector<uint8_t>& data) override;
  std::vector<uint8_t> PeekBlock(int64_t blkno) const override;

  struct Stats {
    uint64_t requests = 0;
    uint64_t interrupts = 0;
    uint64_t sort_passes = 0;    // requests that were reordered by disksort
    size_t max_queue_depth = 0;  // high-water mark incl. in-flight request
  };
  const Stats& stats() const { return stats_; }

  // Queue depth including the request at the hardware.
  size_t QueueDepth() const {
    SpinGuard g(lock_);
    return QueueDepthLocked();
  }

 private:
  // Lock-held variant for internal stats sites.  IKDP_REQUIRES seeds the
  // kcheck entry-held fixpoint and becomes requires_capability under TSA.
  IKDP_REQUIRES(diskq) size_t QueueDepthLocked() const {
    return queue_.size() + (hw_busy_ ? 1 : 0);
  }

  // Inserts into the elevator queue: ascending block order in the current
  // sweep, overflow requests sorted into the next sweep.
  IKDP_CTX_ANY IKDP_REQUIRES(diskq) void Disksort(Buf* b);
  IKDP_CTX_ANY IKDP_REQUIRES(diskq) void StartHw();
  // Hardware completion: raises the device interrupt itself (RunInterrupt),
  // so it is callable from any context but its body runs at interrupt level.
  IKDP_CTX_ANY void Complete(Buf* b, bool ok, int error);

  CpuSystem* cpu_;
  DiskModel disk_;
  // The elevator-queue lock (docs/klock.md).  Held across Disksort/StartHw
  // including disk_.Submit (the model completes via scheduled events, never
  // synchronously) but NEVER across Biodone: completion handlers re-enter
  // Strategy through the cache, and the cache lock ranks outside this one.
  mutable SpinLock lock_ IKDP_LOCK_RANK(diskq, 50) = SpinLock("diskq", 50);
  // Elevator queue, front is next to issue.  Fed by Strategy() from process,
  // interrupt, and softclock context; drained by StartHw() from Strategy and
  // from the completion interrupt.  The `diskq` krace channel still carries
  // the submit -> issue happens-before edge.
  std::deque<Buf*> queue_ IKDP_GUARDED_BY(lock:diskq);
  bool hw_busy_ IKDP_GUARDED_BY(lock:diskq) = false;
  int64_t last_issued_blkno_ IKDP_GUARDED_BY(lock:diskq) = 0;
  std::unordered_map<int64_t, std::vector<uint8_t>> store_;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_DEV_DISK_DRIVER_H_
