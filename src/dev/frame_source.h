// A framebuffer scan-out source.
//
// The paper's implementation supports "framebuffer-to-socket splices for
// sending graphical images and video" (Section 5.1).  This device produces
// one frame of `frame_bytes` every `frame_interval`; ReadAsync delivers the
// next frame when it is scanned out (immediately, if a complete frame is
// already pending).  Frame contents are a deterministic pattern stamped with
// the frame number so receivers can verify integrity and ordering.

#ifndef SRC_DEV_FRAME_SOURCE_H_
#define SRC_DEV_FRAME_SOURCE_H_

#include <cstdint>
#include <string>

#include "src/dev/char_device.h"
#include "src/sim/simulator.h"

namespace ikdp {

class FrameSource : public CharDevice {
 public:
  FrameSource(Simulator* sim, std::string name, int64_t frame_bytes, SimDuration frame_interval);

  const char* Name() const override { return name_.c_str(); }

  bool SupportsRead() const override { return true; }
  IKDP_CTX_ANY bool ReadAsync(int64_t max_bytes, std::function<void(BufData, int64_t)> done) override;

  int64_t frame_bytes() const { return frame_bytes_; }
  SimDuration frame_interval() const { return frame_interval_; }
  int64_t frames_produced() const { return frames_produced_; }

  // Fills `out` with the deterministic content of frame `n` (for receivers
  // to verify against).
  static void FillFrame(int64_t n, int64_t nbytes, std::vector<uint8_t>* out);

 private:
  IKDP_CTX_ANY void DeliverChunk();

  Simulator* sim_;
  std::string name_;
  int64_t frame_bytes_;
  SimDuration frame_interval_;
  int64_t frames_produced_ = 0;
  int64_t frame_offset_ = 0;  // read position within the current frame

  bool request_pending_ = false;
  int64_t request_max_ = 0;
  std::function<void(BufData, int64_t)> request_done_;
};

}  // namespace ikdp

#endif  // SRC_DEV_FRAME_SOURCE_H_
