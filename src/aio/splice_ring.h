// The asynchronous splice submission/completion ring.
//
// FASYNC+SIGIO (paper Section 3) asynchronizes ONE splice per process: one
// signal with no per-operation status, and every submission still pays a
// full syscall trap.  The ring generalizes the paper's mechanism to N
// concurrent streams by amortizing kernel entries over batches — the
// syscall-aggregation idea of AnyCall and "BPF for storage" (PAPERS.md):
//
//  * a process PREPARES splice descriptors (SQEs) in its submission queue
//    with no kernel involvement at all;
//  * one RingEnter trap admits a whole batch, builds the endpoints in
//    process context, and starts as many operations as the in-flight cap
//    allows (the rest queue FIFO);
//  * completions are retired into the completion queue by a softclock
//    reaper riding the existing callout machinery; harvesting posted CQEs
//    never traps.
//
// Backpressure: a ring admits at most `sq_entries` unfinished operations.
// When the queue is full, RingEnter either returns EAGAIN or blocks until
// the reaper frees slots (`block_on_full`) — both policies are modeled.
// A full CQ never loses completions: they stage in an overflow list and
// drain into the CQ as entries are harvested.
//
// LINKED groups: an SQE carrying kSqeLinked chains with its successor into
// a pipeline group (disk -> pipe -> net).  Unlike io_uring's sequential
// links, a group's stages start CONCURRENTLY and atomically — stage k+1
// must consume stage k's output as it streams (a pipe's capacity is far
// smaller than a transfer), so sequential links would deadlock.  Admission,
// start, and cancellation treat a group as one unit, and a member's failure
// cancels its siblings.
//
// This layer knows nothing about file descriptors: the syscall layer
// (src/os/kernel.cc) resolves SQEs into endpoints and feeds them in as
// PreparedOps.

#ifndef SRC_AIO_SPLICE_RING_H_
#define SRC_AIO_SPLICE_RING_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/kern/cpu.h"
#include "src/kern/ctx.h"
#include "src/kern/lock.h"
#include "src/sim/callout.h"
#include "src/sim/krace.h"
#include "src/splice/splice_engine.h"

#if IKDP_TSA_ENABLED
// Clang thread-safety bridge: map the klock lock name "ring" onto the
// SpinLock member that backs it (see src/kern/ctx.h, "TSA BRIDGE").
#define ring_ikdp_tsa_cap , lock_
#endif

namespace ikdp {

// Errno values used by the ring surface (positive; syscalls return -errno).
inline constexpr int kAioENoent = 2;     // unknown cookie
inline constexpr int kAioEIo = 5;        // unrecoverable device error
inline constexpr int kAioEBadf = 9;      // bad ring id / file descriptor
inline constexpr int kAioEAgain = 11;    // submission queue full
inline constexpr int kAioEBusy = 16;     // op already started; cannot cancel
inline constexpr int kAioEInval = 22;    // malformed SQE / endpoint refusal
inline constexpr int kAioENoSpc = 28;    // destination device out of space
inline constexpr int kAioECanceled = 125;

// SQE flag: this entry and its successor form one pipeline group (see the
// header comment — stages start concurrently, not sequentially).  The flag
// on the last prepared entry is ignored.
inline constexpr uint32_t kSqeLinked = 1u << 0;

// A submission-queue entry: one splice, described the way splice(2) takes
// its arguments, plus a user cookie echoed in the completion.
struct SpliceSqe {
  int src_fd = -1;
  int dst_fd = -1;
  int64_t nbytes = 0;   // kSpliceEof for until-end-of-stream
  uint32_t flags = 0;   // kSqeLinked
  uint64_t cookie = 0;  // echoed in the CQE; keep unique among in-flight ops
  // Operator program to run on every chunk of this splice (a kop_load(2)
  // id; 0 = none).  The syscall layer resolves the id and refuses programs
  // that cannot ride a single-sink op (route stages) or would drop bytes
  // into a seekable sink (filters writing a regular file).
  int kop_id = 0;
};

// A completion-queue entry.
struct SpliceCqe {
  uint64_t cookie = 0;
  int64_t result = 0;       // bytes moved (partial counts on cancel)
  // 0 on success; otherwise the errno of the failure.  Device errors keep
  // their identity (kAioEIo vs kAioENoSpc per the engine's completion
  // report); kAioECanceled / kAioEInval / kAioEBadf come from the ring and
  // syscall layers.
  int error = 0;
  SimDuration latency = 0;  // admission -> completion
  // Operator results (meaningful only when the SQE carried a kop_id):
  // running checksum over the stream and chunks filtered in-kernel.
  bool kop_active = false;
  uint64_t kop_checksum = 0;
  int64_t kop_dropped = 0;
};

struct RingConfig {
  int sq_entries = 32;   // cap on unfinished (admitted, unposted) ops
  int cq_entries = 64;   // CQ capacity; beyond it completions stage in overflow
  int max_inflight = 8;  // ops running in the splice engine at once
  bool block_on_full = false;  // RingEnter blocks for SQ space instead of EAGAIN
};

class SpliceRing {
 public:
  SpliceRing(int id, CpuSystem* cpu, CalloutTable* callouts, SpliceEngine* engine,
             RingConfig config);

  SpliceRing(const SpliceRing&) = delete;
  SpliceRing& operator=(const SpliceRing&) = delete;

  int id() const { return id_; }
  const RingConfig& config() const { return config_; }

  // --- user-side SQ (no trap, no kernel state) ---

  void Prepare(const SpliceSqe& sqe) {
    IKDP_KRACE_WRITE(this, "SpliceRing::prepared_");
    prepared_.push_back(sqe);
  }
  int PreparedCount() const { return static_cast<int>(prepared_.size()); }

  // --- kernel-side admission (called by Kernel::RingEnter) ---

  // Length of the linked run at the head of the prepared queue (0 if empty).
  int NextGroupSize() const;

  // True when `group_size` more ops fit under the sq_entries cap.
  bool CanAdmit(int group_size) const {
    SpinGuard g(lock_);
    return UnfinishedLocked() + group_size <= config_.sq_entries;
  }

  SpliceSqe PopPrepared();

  // An SQE the syscall layer resolved into engine endpoints.
  struct PreparedOp {
    SpliceSqe sqe;
    std::unique_ptr<SpliceSource> source;
    std::unique_ptr<SpliceSink> sink;
    std::function<void(int64_t)> on_moved;  // sink-side file state update
    SpliceOptions opts;                     // engine tuning for this op
  };

  // Admits one resolved group: records submission, queues the ops, and
  // starts whatever the in-flight cap allows (in the caller's context —
  // synchronous-device setup costs land in the engine's sync-charge ledger
  // for the syscall layer to drain).
  IKDP_CTX_PROCESS void AdmitGroup(std::vector<PreparedOp> group);

  // Posts an immediate-failure completion for an SQE that failed validation
  // (bad fd, unspliceable endpoint).  Routed through the reaper like any
  // other completion.
  IKDP_CTX_PROCESS void FailSqe(const SpliceSqe& sqe, int error);

  // Records the batch-level trace events (kRingSubmit, kRingSqDepth) after
  // an admission loop; `admitted` counts SQEs, including failed ones.
  IKDP_CTX_PROCESS void NoteSubmitBatch(int admitted);

  // --- completions ---

  // Copies up to `max` posted CQEs into `out`, refilling the CQ from the
  // overflow stage as entries drain.  Never blocks, never traps.
  IKDP_CTX_PROCESS int Harvest(SpliceCqe* out, int max);

  // Posted, unharvested completions (CQ + overflow stage).
  int CqAvailable() const {
    SpinGuard g(lock_);
    return static_cast<int>(cq_.size() + overflow_.size());
  }

  // Cancels a QUEUED op by cookie: it retires with kAioECanceled (its queued
  // group siblings with it, since a partial pipeline cannot run).  Returns 0,
  // -kAioEBusy if the op already started, or -kAioENoent for an unknown
  // cookie.
  IKDP_CTX_PROCESS int Cancel(uint64_t cookie);

  // Admitted ops whose completion has not been posted yet.
  int unfinished() const {
    SpinGuard g(lock_);
    return UnfinishedLocked();
  }

  // Sleep channels for the two backpressure waits.
  const void* SqSpaceChan() const { return &sq_space_chan_; }
  const void* CqChan() const { return &cq_chan_; }

  struct Stats {
    uint64_t submitted = 0;   // SQEs admitted (including immediate failures)
    uint64_t completed = 0;   // CQEs posted
    uint64_t harvested = 0;   // CQEs handed to the process
    uint64_t cancelled = 0;   // ops retired via Cancel (incl. group siblings)
    uint64_t eagain_returns = 0;  // RingEnter calls bounced with EAGAIN
    uint64_t overflows = 0;   // completions that had to stage in overflow
    uint64_t reaps = 0;       // reaper passes
    int sq_depth_max = 0;     // high-water mark of unfinished ops
  };
  const Stats& stats() const { return stats_; }
  void NoteEagain() { ++stats_.eagain_returns; }

 private:
  struct Op {
    SpliceSqe sqe;
    int group = 0;
    enum class St { kQueued, kStarted, kRetired } st = St::kQueued;
    std::unique_ptr<SpliceSource> source;
    std::unique_ptr<SpliceSink> sink;
    std::function<void(int64_t)> on_moved;
    SpliceOptions opts;
    SimTime submitted_at = 0;
    bool engine_called = false;        // handed to the splice engine
    SpliceDescriptor* desc = nullptr;  // valid while kStarted
    // The op's kspan ("aio.op"), minted at admission as a child of the
    // submitting process's span; ended exactly once at Retire — including
    // cancelled LINKED siblings, which retire like any other op.
    SpanId span = kNoSpan;
    bool span_owned = false;  // minted (must End) vs inherited
    // Completion payload (filled at retire time).
    int64_t result = 0;
    int error = 0;
    SimTime finished_at = 0;
    // Operator results captured from the engine completion (kop_active is
    // set from the options at retire so validation-failed ops report false).
    bool kop_active = false;
    uint64_t kop_checksum = 0;
    int64_t kop_dropped = 0;
  };

  // Starts queued groups FIFO while the in-flight cap has room for a whole
  // group (groups start atomically; a too-big head group blocks the line).
  IKDP_CTX_ANY void Pump();

  IKDP_CTX_ANY void StartOp(Op* op);

  // Engine completion: fills the op's CQE payload, cancels group siblings
  // on error, and arms the reaper.
  IKDP_CTX_ANY void OnEngineComplete(Op* op, const SpliceCompletion& c);

  // Moves an op from wherever it lives into retired_ with the given payload.
  IKDP_CTX_ANY void Retire(Op* op, int64_t result, int error);

  // Cancels every not-yet-retired member of `group` except `except`:
  // queued members retire immediately, started members are cancelled in
  // the engine (their completion arrives with cancelled=true).
  IKDP_CTX_ANY void CancelGroupSiblings(int group, const Op* except);

  IKDP_CTX_ANY void ArmReaper();

  // Softclock reaper body: posts retired completions into the CQ (or the
  // overflow stage), wakes waiters, and pumps newly-fitting queued ops.
  IKDP_CTX_SOFTCLOCK void Reap();

  // Lock-held variant of unfinished() for internal admission-control sites.
  // IKDP_REQUIRES seeds the kcheck entry-held fixpoint and becomes
  // requires_capability under TSA.
  IKDP_REQUIRES(ring) int UnfinishedLocked() const {
    return static_cast<int>(queued_.size() + started_.size() + retired_.size());
  }

  void Trace(TraceKind kind, int64_t b);

  const int id_;
  CpuSystem* cpu_;
  CalloutTable* callouts_;
  SpliceEngine* engine_;
  const RingConfig config_;

  // The ring lock (docs/klock.md): guards the kernel-side op queues, the
  // CQ/overflow pair, and the reaper latch.  It is fine-grained — never held
  // across engine_->StartEx / engine_->Cancel (both can complete an op
  // synchronously and re-enter Retire) — but IS held across ScheduleHead in
  // ArmReaper, a deliberate ring -> callout nesting (legal by rank; the
  // callout table never calls back synchronously).  `mutable` lets const
  // accessors (unfinished, CqAvailable) lock.
  mutable SpinLock lock_ IKDP_LOCK_RANK(ring, 20) = SpinLock("ring", 20);
  // The user-side SQ exists purely in process context (Prepare/PopPrepared
  // never leave the submitting process) and stays context-guarded — no lock
  // warranted.  The kernel-side queues are touched by admission (process),
  // engine completions (interrupt), and the reaper (softclock).  retired_
  // is handed from completion to reaper through the `reaper` ordering
  // channel (a handoff, not shared state — also no lock); the CQ/overflow
  // pair is filled at softclock (Reap) and drained in process context
  // (Harvest/Cancel).
  std::deque<SpliceSqe> prepared_ IKDP_GUARDED_BY(process);  // user-side SQ
  std::deque<std::unique_ptr<Op>> queued_ IKDP_GUARDED_BY(lock:ring);
  std::vector<std::unique_ptr<Op>> started_ IKDP_GUARDED_BY(lock:ring);
  std::vector<std::unique_ptr<Op>> retired_ IKDP_ORDERED_BY(reaper);
  std::deque<SpliceCqe> cq_ IKDP_GUARDED_BY(lock:ring);
  std::deque<SpliceCqe> overflow_ IKDP_GUARDED_BY(lock:ring);

  int next_group_ = 1;
  bool reaper_armed_ IKDP_GUARDED_BY(lock:ring) = false;
  char sq_space_chan_ = 0;  // address-only sleep channels
  char cq_chan_ = 0;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_AIO_SPLICE_RING_H_
