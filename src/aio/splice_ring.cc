#include "src/aio/splice_ring.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/sim/krace.h"

namespace ikdp {

// Ring krace probes are plain WRITEs: the op lists are read-modify-write
// (erase-by-pointer, FIFO group scans) and every legal handoff has a real
// ordering edge — admission and harvest are schedule descendants of the
// process's dispatch, completions run in the serialized interrupt engine,
// and the retired_ -> Reap handoff rides the `reaper` ordering channel.
// An unordered same-timestamp pair here would be a genuine bug.

SpliceRing::SpliceRing(int id, CpuSystem* cpu, CalloutTable* callouts, SpliceEngine* engine,
                       RingConfig config)
    : id_(id), cpu_(cpu), callouts_(callouts), engine_(engine), config_(config) {}

void SpliceRing::Trace(TraceKind kind, int64_t b) {
  if (cpu_->trace() != nullptr) {
    cpu_->trace()->Record(cpu_->sim()->Now(), kind, id_, b);
  }
}

int SpliceRing::NextGroupSize() const {
  if (prepared_.empty()) {
    return 0;
  }
  // A linked run: every member except the last carries kSqeLinked.  The flag
  // on the final prepared entry has no successor and is ignored.
  size_t i = 0;
  while (i + 1 < prepared_.size() && (prepared_[i].flags & kSqeLinked) != 0) {
    ++i;
  }
  return static_cast<int>(i) + 1;
}

SpliceSqe SpliceRing::PopPrepared() {
  assert(!prepared_.empty());
  IKDP_KRACE_WRITE(this, "SpliceRing::prepared_");
  SpliceSqe sqe = prepared_.front();
  prepared_.pop_front();
  return sqe;
}

void SpliceRing::AdmitGroup(std::vector<PreparedOp> group) {
  const int gid = next_group_++;
  for (PreparedOp& prep : group) {
    auto op = std::make_unique<Op>();
    op->sqe = prep.sqe;
    op->group = gid;
    op->source = std::move(prep.source);
    op->sink = std::move(prep.sink);
    op->on_moved = std::move(prep.on_moved);
    op->opts = prep.opts;
    op->submitted_at = cpu_->sim()->Now();
    op->span_owned = KspanOwned();
    op->span = KspanBegin(op->submitted_at, "aio.op", static_cast<int64_t>(op->sqe.cookie));
    ++stats_.submitted;
    KspanScope scope("aio", op->span);
    Trace(TraceKind::kRingOpSubmit, static_cast<int64_t>(op->sqe.cookie));
    IKDP_KRACE_WRITE(this, "SpliceRing::queued_");
    lock_.Acquire();
    queued_.push_back(std::move(op));
    lock_.Release();
  }
  lock_.Acquire();
  stats_.sq_depth_max = std::max(stats_.sq_depth_max, UnfinishedLocked());
  lock_.Release();
  Pump();
}

void SpliceRing::FailSqe(const SpliceSqe& sqe, int error) {
  auto op = std::make_unique<Op>();
  op->sqe = sqe;
  op->submitted_at = cpu_->sim()->Now();
  op->span_owned = KspanOwned();
  op->span = KspanBegin(op->submitted_at, "aio.op", static_cast<int64_t>(sqe.cookie));
  ++stats_.submitted;
  KspanScope scope("aio", op->span);
  Trace(TraceKind::kRingOpSubmit, static_cast<int64_t>(sqe.cookie));
  Op* raw = op.get();
  IKDP_KRACE_WRITE(this, "SpliceRing::queued_");
  lock_.Acquire();
  queued_.push_back(std::move(op));
  stats_.sq_depth_max = std::max(stats_.sq_depth_max, UnfinishedLocked());
  lock_.Release();
  Retire(raw, 0, error);  // acquires the lock itself
}

void SpliceRing::NoteSubmitBatch(int admitted) {
  Trace(TraceKind::kRingSubmit, admitted);
  Trace(TraceKind::kRingSqDepth, unfinished());
}

void SpliceRing::Pump() {
  for (;;) {
    // Lock per iteration: the head group is claimed (queued_ -> started_)
    // under the lock, then started with the lock dropped — StartOp can run
    // the whole splice synchronously and re-enter Retire.
    lock_.Acquire();
    if (queued_.empty()) {
      lock_.Release();
      return;
    }
    const int group = queued_.front()->group;
    size_t gsize = 0;
    while (gsize < queued_.size() && queued_[gsize]->group == group) {
      ++gsize;
    }
    // A group's stages start atomically (a pipeline member without its
    // consumer would wedge); a head group that doesn't fit blocks the line —
    // FIFO order is part of the submission contract.
    if (static_cast<int>(started_.size() + gsize) > config_.max_inflight) {
      lock_.Release();
      return;
    }
    std::vector<Op*> batch;
    batch.reserve(gsize);
    for (size_t i = 0; i < gsize; ++i) {
      IKDP_KRACE_WRITE(this, "SpliceRing::queued_");
      std::unique_ptr<Op> owned = std::move(queued_.front());
      queued_.pop_front();
      Op* op = owned.get();
      op->st = Op::St::kStarted;
      batch.push_back(op);
      IKDP_KRACE_WRITE(this, "SpliceRing::started_");
      started_.push_back(std::move(owned));
    }
    lock_.Release();
    for (Op* op : batch) {
      // A synchronously-failing sibling may have cancelled this member
      // while an earlier batch member was starting.
      if (op->st == Op::St::kStarted && !op->engine_called) {
        StartOp(op);
      }
    }
  }
}

void SpliceRing::StartOp(Op* op) {
  op->engine_called = true;
  Op* raw = op;
  // The engine mints its "splice.stream" span as a child of the cursor's —
  // push the op span so the stream nests under this op.
  KspanScope scope("aio", op->span);
  SpliceDescriptor* d =
      engine_->StartEx(std::move(op->source), std::move(op->sink), op->opts,
                       [this, raw](const SpliceCompletion& c) { OnEngineComplete(raw, c); });
  // The splice can run to completion inside StartEx (synchronous devices);
  // only remember the descriptor while the op is still in flight.
  if (raw->st == Op::St::kStarted) {
    raw->desc = d;
  }
}

void SpliceRing::OnEngineComplete(Op* op, const SpliceCompletion& c) {
  KspanScope scope("aio", op->span);
  if (op->on_moved && !c.io_error) {
    // Partial byte counts from a cancel still update sink-side file state:
    // those bytes are on the device.
    op->on_moved(c.bytes_moved);
  }
  // Preserve the device's errno (kErrNoSpc stays distinguishable from a
  // media error); kAioEIo only backstops a report with no errno attached.
  const int error =
      c.io_error ? (c.error != 0 ? c.error : kAioEIo) : (c.cancelled ? kAioECanceled : 0);
  const int group = op->group;
  op->finished_at = c.finished_at;
  op->kop_active = c.kop_active;
  op->kop_checksum = c.kop_checksum;
  op->kop_dropped = c.kop_dropped;
  Retire(op, c.bytes_moved, error);
  // An I/O error tears down the rest of the pipeline group — a downstream
  // stage would otherwise wait forever for bytes that will never arrive.
  // Cancel-driven completions do NOT re-propagate (that would recurse).
  if (c.io_error) {
    CancelGroupSiblings(group, op);
  }
}

void SpliceRing::Retire(Op* op, int64_t result, int error) {
  op->result = result;
  op->error = error;
  if (op->finished_at == 0) {
    op->finished_at = cpu_->sim()->Now();
  }
  op->st = Op::St::kRetired;
  op->desc = nullptr;
  if (error == kAioECanceled) {
    ++stats_.cancelled;
  }
  {
    KspanScope scope("aio", op->span);
    Trace(TraceKind::kRingOpComplete, static_cast<int64_t>(op->sqe.cookie));
  }
  // Retire runs exactly once per op (the list scan below asserts the op is
  // still owned), so the span closes exactly once — cancelled LINKED
  // siblings included.
  if (op->span_owned) {
    KspanEnd(op->finished_at, op->span, result, error != 0);
  }
  std::unique_ptr<Op> owned;
  lock_.Acquire();
  IKDP_KRACE_WRITE(this, "SpliceRing::queued_");
  for (auto it = queued_.begin(); it != queued_.end(); ++it) {
    if (it->get() == op) {
      owned = std::move(*it);
      queued_.erase(it);
      break;
    }
  }
  if (owned == nullptr) {
    IKDP_KRACE_WRITE(this, "SpliceRing::started_");
    for (auto it = started_.begin(); it != started_.end(); ++it) {
      if (it->get() == op) {
        owned = std::move(*it);
        started_.erase(it);
        break;
      }
    }
  }
  lock_.Release();
  assert(owned != nullptr);
  // retired_ is a completion -> reaper handoff riding the `reaper` ordering
  // channel, not lock-guarded shared state (see the member comment).
  IKDP_KRACE_WRITE(this, "SpliceRing::retired_");
  retired_.push_back(std::move(owned));
  if (KraceEnabled()) Krace().ChannelRelease(&retired_);
  ArmReaper();
}

void SpliceRing::CancelGroupSiblings(int group, const Op* except) {
  if (group == 0) {
    return;  // immediate-failure ops carry no group
  }
  // Collect first: Retire() and engine_->Cancel() both mutate the lists
  // (Cancel can complete a drained descriptor synchronously), so the lock
  // covers only the scan, never the per-member actions.
  std::vector<Op*> members;
  lock_.Acquire();
  for (const auto& q : queued_) {
    if (q->group == group && q.get() != except) {
      members.push_back(q.get());
    }
  }
  for (const auto& s : started_) {
    if (s->group == group && s.get() != except) {
      members.push_back(s.get());
    }
  }
  lock_.Release();
  for (Op* op : members) {
    if (op->st == Op::St::kQueued) {
      Retire(op, 0, kAioECanceled);
    } else if (op->st == Op::St::kStarted) {
      if (op->desc != nullptr) {
        // In flight: the engine drains it and the completion arrives with
        // cancelled=true (partial bytes reported).
        engine_->Cancel(op->desc);
      } else {
        Retire(op, 0, kAioECanceled);
      }
    }
  }
}

int SpliceRing::Cancel(uint64_t cookie) {
  // Find under the lock, act after release: Retire and CancelGroupSiblings
  // take the lock themselves.
  Op* target = nullptr;
  int group = 0;
  bool started = false;
  lock_.Acquire();
  for (const auto& q : queued_) {
    if (q->sqe.cookie == cookie) {
      target = q.get();
      group = target->group;
      break;
    }
  }
  if (target == nullptr) {
    for (const auto& s : started_) {
      if (s->sqe.cookie == cookie) {
        started = true;
        break;
      }
    }
  }
  lock_.Release();
  if (target != nullptr) {
    Trace(TraceKind::kRingCancel, static_cast<int64_t>(cookie));
    Retire(target, 0, kAioECanceled);
    // A partial pipeline cannot run: the queued group goes down together.
    // (Groups start atomically, so no sibling can be mid-flight here.)
    CancelGroupSiblings(group, target);
    return 0;
  }
  return started ? -kAioEBusy : -kAioENoent;
}

void SpliceRing::ArmReaper() {
  // The check-and-arm latch is one critical section, held across
  // ScheduleHead: a deliberate ring -> callout nesting (rank 20 -> 90;
  // ScheduleHead never calls back into the ring).
  lock_.Acquire();
  if (reaper_armed_) {
    lock_.Release();
    return;
  }
  reaper_armed_ = true;
  // The reaper rides the existing callout machinery, like the engine's
  // write-side drain: head of the callout list, charged as softclock work.
  callouts_->ScheduleHead([this] {
    cpu_->RunInterrupt(cpu_->costs().softclock_per_callout, [this] {
      lock_.Acquire();
      reaper_armed_ = false;
      lock_.Release();
      Reap();
    });
  });
  lock_.Release();
}

void SpliceRing::Reap() {
  ++stats_.reaps;
  if (KraceEnabled()) Krace().ChannelAcquire(&retired_);
  IKDP_KRACE_WRITE(this, "SpliceRing::retired_");
  std::vector<std::unique_ptr<Op>> batch;
  batch.swap(retired_);
  int posted = 0;
  // The CQ fill is one critical section; the lock drops before the wakeups
  // and the pump (Pump takes it per iteration).
  lock_.Acquire();
  for (const std::unique_ptr<Op>& op : batch) {
    SpliceCqe cqe;
    cqe.cookie = op->sqe.cookie;
    cqe.result = op->result;
    cqe.error = op->error;
    cqe.latency = op->finished_at - op->submitted_at;
    cqe.kop_active = op->kop_active;
    cqe.kop_checksum = op->kop_checksum;
    cqe.kop_dropped = op->kop_dropped;
    if (op->kop_active) {
      // Publishing an operator's results (checksum, drop count) into the CQE
      // is operator work: charge the fixed finalization cost here so it lands
      // in the kop softclock bucket, per op, under the op's span.
      KspanScope scope("kop", op->span);
      cpu_->ChargeKop(cpu_->costs().kop_stage_overhead);
    }
    IKDP_KRACE_WRITE(this, "SpliceRing::cq_");
    if (static_cast<int>(cq_.size()) < config_.cq_entries) {
      cq_.push_back(cqe);
    } else {
      overflow_.push_back(cqe);
      ++stats_.overflows;
      Trace(TraceKind::kRingOverflow, static_cast<int64_t>(overflow_.size()));
    }
    ++stats_.completed;
    ++posted;
  }
  lock_.Release();
  Trace(TraceKind::kRingReap, posted);
  // Posted completions free SQ slots and satisfy RingEnter's wait.
  cpu_->Wakeup(CqChan());
  cpu_->Wakeup(SqSpaceChan());
  Pump();
}

int SpliceRing::Harvest(SpliceCqe* out, int max) {
  SpinGuard g(lock_);
  int n = 0;
  while (n < max && !cq_.empty()) {
    IKDP_KRACE_WRITE(this, "SpliceRing::cq_");
    out[n++] = cq_.front();
    cq_.pop_front();
    ++stats_.harvested;
    if (!overflow_.empty()) {
      cq_.push_back(overflow_.front());
      overflow_.pop_front();
    }
  }
  return n;
}

}  // namespace ikdp
