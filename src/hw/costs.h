// CPU cost configuration for the simulated machine.
//
// The paper's two results (CPU availability, device-to-device throughput) are
// driven by where CPU cycles go: memory-to-memory copies, mode switches,
// context switches, interrupt service, and per-block buffer-cache
// bookkeeping.  This struct centralizes those costs; the default values model
// the paper's testbed, a DECstation 5000/200 (25 MHz MIPS R3000, 64 KB I/D
// caches, cached memory read 21 MB/s, partial-page write 20 MB/s, uncached
// read 10 MB/s — [DEC90] as cited in the paper).
//
// Each experiment binary prints the cost configuration it ran with, and the
// ablation benches sweep individual fields.

#ifndef SRC_HW_COSTS_H_
#define SRC_HW_COSTS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace ikdp {

struct CostConfig {
  // --- memory system ---
  //
  // The R3000's copy rate depends strongly on whether the source lives in
  // the 64 KB data cache: cached reads stream at 21 MB/s and partial-page
  // writes at 20 MB/s, but uncached reads manage only 10 MB/s ([DEC90]).

  // Kernel-to-kernel block copy bandwidth (bcopy of an 8 KB buffer that was
  // just produced by the previous pipeline stage): cache-warm, limited by
  // the 20 MB/s write path.
  double bcopy_bandwidth_bps = 20e6;

  // Kernel<->user copy bandwidth (copyin/copyout): user buffers are large
  // and cache-cold, so the copy runs at the uncached-read-limited rate
  // 1/(1/10 + 1/20) = 6.7 MB/s.
  double copyio_bandwidth_bps = 6.7e6;

  // --- control transfer ---

  // Full process context switch: save/restore, run-queue manipulation, cache
  // and TLB refill effects.
  SimDuration context_switch = Microseconds(180);

  // System call trap entry + exit + argument validation.
  SimDuration syscall_overhead = Microseconds(45);

  // Device interrupt service envelope (entry, driver epilogue, exit),
  // excluding any handler-specific work charged separately.
  SimDuration interrupt_overhead = Microseconds(110);

  // Softclock dispatch cost per callout run.
  SimDuration softclock_per_callout = Microseconds(25);

  // --- I/O path bookkeeping (per 8 KB block) ---

  // getblk/bread/brelse hash and free-list manipulation.
  SimDuration bufcache_op = Microseconds(30);

  // Filesystem block-map lookup (bmap) per logical block, cache warm.
  SimDuration bmap_op = Microseconds(20);

  // Driver start: disksort insertion + SCSI command setup.
  SimDuration driver_start = Microseconds(60);

  // --- splice-specific handler bodies (paper Section 5.2.2-5.2.3) ---

  // Read-completion handler body: index splice descriptor, schedule write
  // handler on the callout list.
  SimDuration splice_read_handler = Microseconds(30);

  // Write-side handler body: modified getblk (no data allocation), buffer
  // header aliasing, bawrite issue.
  SimDuration splice_write_handler = Microseconds(70);

  // Write-completion handler body: release both buffers, flow-control
  // bookkeeping, read refill issue.
  SimDuration splice_wdone_handler = Microseconds(40);

  // --- network protocol processing (per datagram) ---

  // UDP/IP input or output processing, excluding the checksum pass.
  SimDuration net_proto_packet = Microseconds(120);

  // Checksum computation streams the data once through the CPU at the
  // cached-read rate.
  double checksum_bandwidth_bps = 21e6;

  // --- in-kernel splice operators (src/kop) ---

  // Fixed dispatch cost per operator stage per chunk: fetch the stage
  // descriptor, window bounds re-check, outcome bookkeeping.
  SimDuration kop_stage_overhead = Microseconds(5);

  // Byte-scan rate for filter stages (single cached read pass over the
  // window, same memory system as the checksum path).
  double kop_scan_bandwidth_bps = 21e6;

  // --- scheduling ---

  // Round-robin quantum.  4.3BSD rescheduled every 0.1 s (roundrobin()).
  SimDuration quantum = Milliseconds(100);

  // 4.3BSD-style CPU-usage priority decay (schedcpu()): processes that use
  // a lot of CPU have their user priority degraded so interactive and
  // I/O-bound processes win the run queue.  Off by default — the paper's
  // experiments are two-process and kernel-priority dominated, so decay does
  // not change them — but available for the scheduler-fidelity ablation.
  bool priority_decay = false;
  SimDuration decay_interval = Seconds(1);
  double decay_factor = 0.66;          // p_cpu *= factor each interval
  double penalty_per_cpu_second = 10;  // priority points per recent CPU-sec
  int max_decay_penalty = 20;

  // Time to copy `bytes` kernel-to-kernel.
  SimDuration BcopyTime(int64_t bytes) const {
    return TransferTime(bytes, bcopy_bandwidth_bps);
  }

  // Time to copy `bytes` between kernel and user space.
  SimDuration CopyioTime(int64_t bytes) const {
    return TransferTime(bytes, copyio_bandwidth_bps);
  }

  // Time to checksum `bytes`.
  SimDuration ChecksumTime(int64_t bytes) const {
    return TransferTime(bytes, checksum_bandwidth_bps);
  }

  // Full protocol-processing cost for one datagram of `bytes`.
  SimDuration UdpPacketTime(int64_t bytes) const {
    return net_proto_packet + ChecksumTime(bytes);
  }

  // Time for an operator filter stage to scan `bytes`.
  SimDuration KopScanTime(int64_t bytes) const {
    return TransferTime(bytes, kop_scan_bandwidth_bps);
  }
};

// The default configuration models the DECstation 5000/200.
inline CostConfig DecStation5000Costs() { return CostConfig{}; }

}  // namespace ikdp

#endif  // SRC_HW_COSTS_H_
