// Timing model of a SCSI disk drive with a segmented read-ahead cache.
//
// The model captures the characteristics the paper's Section 6.1 reports for
// its two test drives:
//
//   RZ56: 8.3 ms average rotational latency, 16 ms average seek,
//         1.66 MB/s media rate, 64 KB read-ahead cache (1 segment).
//   RZ58: 5.6 ms average rotational latency, 12.5 ms average seek,
//         ~2.7 MB/s media rate, 256 KB read-ahead cache in 4 segments.
//
// Requests are serviced one at a time; when several are queued, the next
// one is chosen by a pluggable scheduler (DiskParams::sched):
//
//  * kFifo — strict arrival order, the pre-scheduler behaviour, for
//    drivers that sort above the device (src/dev/disk_driver.h disksort).
//  * kCLook (default) — circular LOOK: ascending offset from the end of
//    the last transfer, wrapping to the lowest queued offset when nothing
//    lies ahead.  This is what a command-queueing drive does internally
//    and what the NetBSD bufq/disksort layer does in software.
//
// Queued requests physically adjacent to the one being started (same
// direction) are coalesced into a single transfer up to
// DiskParams::max_coalesce_bytes: one controller overhead and one
// mechanical positioning for the whole run, with every merged request's
// callback fired at the combined completion in transfer order.  Under
// kFifo only a run at the queue front is merged, so completion order is
// exactly arrival order in that mode.
//
// Service time decomposes into controller overhead, seek, rotational delay,
// and transfer:
//
//  * A read that falls inside an already-prefetched region of a cache
//    segment transfers at the SCSI bus rate with no mechanical delay.
//  * A read inside a segment but ahead of its fill frontier waits for the
//    background prefetch (which fills at the media rate) to catch up.
//  * Any other access seeks (distance-dependent), waits rotational latency
//    (zero when the access is physically sequential to the previous one —
//    drive firmware and interleave absorb back-to-back accesses), and
//    transfers at the media rate.  A read miss (re)starts a prefetch
//    segment at its end position.
//
// The model is deterministic: rotational latency uses the average for
// non-sequential accesses rather than a random draw, which keeps unit tests
// exact and experiments reproducible without materially changing aggregate
// behaviour over thousands of requests.

#ifndef SRC_HW_DISK_H_
#define SRC_HW_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/hw/fault.h"
#include "src/sim/kspan.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace ikdp {

// Request scheduling policy for the queue in front of the mechanism.
enum class DiskSched {
  kFifo,   // strict arrival order (pre-scheduler behaviour)
  kCLook,  // circular LOOK: ascending sweep, wrap to lowest queued offset
};

struct DiskParams {
  std::string name;

  int64_t capacity_bytes = 0;
  int64_t bytes_per_cylinder = 0;

  // Seek time model: seek(d cylinders) = min + (max - min) * sqrt(d / ncyl).
  SimDuration min_seek = 0;
  SimDuration avg_seek = 0;
  SimDuration max_seek = 0;

  SimDuration avg_rotational_latency = 0;  // half a rotation

  double media_rate_bps = 0;  // to/from the platters
  double bus_rate_bps = 0;    // SCSI burst rate for cache hits

  int64_t cache_bytes = 0;  // total read-ahead cache
  int cache_segments = 1;   // independent sequential streams tracked

  SimDuration controller_overhead = 0;  // fixed per-request cost

  // Queue scheduling policy and the coalescing bound: queued requests
  // physically adjacent to the one being started (same direction) merge
  // into a single transfer of at most this many bytes.  0 disables
  // coalescing.
  DiskSched sched = DiskSched::kCLook;
  int64_t max_coalesce_bytes = 64 * 1024;

  int64_t Cylinders() const {
    return bytes_per_cylinder > 0 ? capacity_bytes / bytes_per_cylinder : 1;
  }
  int64_t SegmentBytes() const {
    return cache_segments > 0 ? cache_bytes / cache_segments : 0;
  }
};

// Parameters for Digital's RZ56 SCSI disk (665 MB, 3600 RPM).
DiskParams Rz56Params();

// Parameters for Digital's RZ58 SCSI disk (1.38 GB, 5400 RPM).
DiskParams Rz58Params();

// An idealized very fast disk used in some property tests: negligible
// mechanical delays, high transfer rate.
DiskParams InstantDiskParams();

// One outstanding transfer request.
struct DiskRequest {
  int64_t offset = 0;  // byte offset on the device, sector aligned
  int64_t nbytes = 0;
  bool is_read = true;
  // Invoked in simulator event context; `ok` is false when the medium
  // reported an unrecoverable error for this request.
  std::function<void(bool ok)> done;
  // The kspan of the request that issued this transfer (src/sim/kspan.h);
  // rides the hardware queue so dispatch/complete trace records and the
  // completion callback attribute to the originating request.
  SpanId span = kNoSpan;
};

class DiskModel {
 public:
  DiskModel(Simulator* sim, DiskParams params);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // Enqueues a request.  Each request's callback fires exactly once, at the
  // completion of the transfer that carried it; requests merged into one
  // transfer complete together, callbacks in ascending-offset (transfer)
  // order.  Under DiskSched::kFifo, completion order is arrival order.
  void Submit(DiskRequest req);

  const DiskParams& params() const { return params_; }

  // True when no request is in flight or queued.
  bool Idle() const { return !busy_ && queue_.empty(); }

  size_t QueueDepth() const { return queue_.size() + (busy_ ? 1 : 0); }

  // Fault injection: requests for which `hook(offset, is_read)` returns true
  // complete with an error after their normal service time (a media error
  // is only detected once the heads get there).  Pass nullptr to clear.
  using FaultHook = std::function<bool(int64_t offset, bool is_read)>;
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Probabilistic fault plan (src/hw/fault.h), composed with the hook (the
  // hook is consulted first).  A plan with every knob off clears the state:
  // no RNG is ever drawn and behaviour is bit-identical to the fault-free
  // model.
  void SetFaultPlan(const DiskFaultPlan& plan);

  // Errno of the most recently completed request: 0 on success, kErrIo or
  // kErrNoSpc on failure.  Valid during (and after) that request's `done`
  // callback — completion callbacks read it to tag the error they are
  // delivering.
  int last_error() const { return last_error_; }

  // Attaches a trace log recording scheduler events: kDiskDispatch /
  // kDiskComplete (paired by transfer serial), kDiskCoalesce, and
  // kDiskSweepWrap.  nullptr detaches; default off.  DiskDriver refreshes
  // this from the CPU's trace on every Strategy call, so attaching a log to
  // a running machine picks up its disks automatically.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  // --- statistics ---
  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_cache_hits = 0;   // transfers fully/partially from cache
    uint64_t seeks = 0;             // non-zero-distance seeks performed
    uint64_t errors = 0;            // injected media errors (hook + plan)
    uint64_t enospc_errors = 0;     // writes failed by the plan's byte budget
    uint64_t faults_transient = 0;  // media errors the next access outlives
    uint64_t faults_permanent = 0;  // grown-defect errors (plan.permanent)
    uint64_t latency_spikes = 0;    // transfers stretched by the fault plan
    uint64_t coalesced = 0;         // requests merged into another transfer
    uint64_t queue_sort_passes = 0; // scheduling scans of a multi-entry queue
    size_t max_queue_depth = 0;     // high-water mark incl. in-flight request
    int64_t bytes_read = 0;
    int64_t bytes_written = 0;
    SimDuration busy_time = 0;      // total time servicing requests
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  // A read-ahead segment: data in [start, start+limit) is being prefetched;
  // the frontier grows at the media rate from `fill_start_pos` beginning at
  // `fill_start_time`.
  struct Segment {
    int64_t start = 0;
    int64_t limit = 0;           // exclusive end of the segment window
    int64_t fill_start_pos = 0;  // frontier position at fill_start_time
    SimTime fill_start_time = 0;
  };

  void StartNext();

  // Evaluates the fault plan for one request about to be serviced; returns
  // the errno it should complete with (0 = success).  Draws from the plan's
  // RNG, so it must be called exactly once per request, in issue order.
  int EvaluatePlanFault(const DiskRequest& r);

  // Picks the next request per the scheduling policy and removes it from
  // the queue.
  DiskRequest ScheduleNext();

  // Removes queued requests physically adjacent to `batch` (same direction)
  // and appends them, bounded by max_coalesce_bytes.
  void Coalesce(std::vector<DiskRequest>* batch);

  // Timing (and read-ahead segment bookkeeping) for one physical transfer
  // of [offset, offset+nbytes).
  SimDuration ServiceTime(int64_t offset, int64_t nbytes, bool is_read);
  SimDuration SeekTime(int64_t from_cyl, int64_t to_cyl);

  // Returns the prefetch frontier of `seg` at time `now`.
  int64_t Frontier(const Segment& seg, SimTime now) const;

  // Finds a segment containing [offset, offset+nbytes), or nullptr.
  Segment* FindSegment(int64_t offset, int64_t nbytes);

  // Starts (or restarts) a prefetch segment beginning at `pos` at time `t`.
  void StartSegment(int64_t pos, SimTime t);

  Simulator* sim_;
  DiskParams params_;
  std::deque<DiskRequest> queue_;
  bool busy_ = false;

  int64_t head_cylinder_ = 0;
  int64_t last_end_offset_ = -1;  // end of the previous media access
  int64_t sweep_pos_ = 0;         // C-LOOK sweep position (end of last issue)
  std::list<Segment> segments_;   // most recently used first
  FaultHook fault_hook_;

  // Present only while a non-trivial plan is installed, so the disabled
  // case provably draws no randomness.
  struct FaultState {
    explicit FaultState(const DiskFaultPlan& p) : plan(p), rng(p.seed) {}
    DiskFaultPlan plan;
    Rng rng;
    std::unordered_set<int64_t> bad_offsets;  // permanent-mode grown defects
    int64_t bytes_written = 0;                // against write_byte_budget
  };
  std::unique_ptr<FaultState> fault_state_;
  int last_error_ = 0;

  TraceLog* trace_ = nullptr;
  int64_t transfer_serial_ = 0;   // stamps kDiskDispatch/kDiskComplete pairs
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_HW_DISK_H_
