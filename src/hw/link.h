// A point-to-point network link with bandwidth and propagation delay.
//
// Used by the UDP socket layer (src/net) to carry datagrams between two
// simulated hosts (or as a loopback).  The link serializes frames at the
// configured bandwidth and delivers each after the propagation delay; frames
// queue behind one another as on a real wire.  A finite transmit queue drops
// excess frames, which lets tests exercise UDP loss behaviour.

#ifndef SRC_HW_LINK_H_
#define SRC_HW_LINK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/hw/fault.h"
#include "src/kern/ctx.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ikdp {

struct LinkParams {
  std::string name = "ether";
  double bandwidth_bps = 10e6 / 8;  // bytes/s on the wire (10 Mbit/s Ethernet)
  SimDuration propagation_delay = Microseconds(50);
  int per_frame_overhead_bytes = 34;  // preamble + MAC header + CRC + gap
  int mtu_bytes = 1480;               // payload per wire fragment
  int tx_queue_frames = 64;           // frames queued beyond the one in flight
};

// A 10 Mbit/s Ethernet segment, the paper-era campus network.
LinkParams EthernetParams();

// A loopback "link": high bandwidth, negligible delay.
LinkParams LoopbackParams();

class NetworkLink {
 public:
  using Deliver = std::function<void(int64_t frame_bytes)>;

  NetworkLink(Simulator* sim, LinkParams params);

  NetworkLink(const NetworkLink&) = delete;
  NetworkLink& operator=(const NetworkLink&) = delete;

  // Transmits a datagram of `payload_bytes` (fragmented into MTU-sized wire
  // frames, each paying the per-frame overhead); `deliver` fires at the
  // receiver once it has fully arrived, `on_sent` (optional) at the sender
  // once it has left the interface.  Returns false (and drops the datagram)
  // if the transmit queue is full.
  IKDP_CTX_ANY bool Send(int64_t payload_bytes, Deliver deliver,
                         std::function<void()> on_sent = nullptr);

  const LinkParams& params() const { return params_; }
  bool Idle() const { return !busy_ && queued_ == 0; }

  // True when the transmit queue can take one more frame; a Send issued now
  // will be accepted.  Senders check this BEFORE paying protocol-processing
  // costs so a full interface backpressures instead of burning CPU.
  bool HasTxRoom() const { return queued_ < params_.tx_queue_frames; }

  // Probabilistic loss and delivery jitter (src/hw/fault.h).  A plan with
  // every knob off clears the state: no RNG is drawn, behaviour identical
  // to the fault-free link.
  void SetFaultPlan(const LinkFaultPlan& plan) {
    fault_state_ = plan.Enabled() ? std::make_unique<FaultState>(plan) : nullptr;
  }

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_dropped = 0;  // transmit-queue overflow (sender-visible)
    uint64_t frames_lost = 0;     // lost on the wire by the fault plan
    uint64_t frames_jittered = 0; // deliveries delayed by the fault plan
    int64_t payload_bytes = 0;
    SimDuration busy_time = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Frame {
    int64_t payload_bytes;
    Deliver deliver;
    std::function<void()> on_sent;
  };

  struct FaultState {
    explicit FaultState(const LinkFaultPlan& p) : plan(p), rng(p.seed) {}
    LinkFaultPlan plan;
    Rng rng;
  };

  void StartNext();

  Simulator* sim_;
  LinkParams params_;
  std::deque<Frame> queue_;
  int queued_ = 0;
  bool busy_ = false;
  std::unique_ptr<FaultState> fault_state_;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_HW_LINK_H_
