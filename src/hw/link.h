// A point-to-point network link with bandwidth and propagation delay.
//
// Used by the UDP socket layer (src/net) to carry datagrams between two
// simulated hosts (or as a loopback).  The link serializes frames at the
// configured bandwidth and delivers each after the propagation delay; frames
// queue behind one another as on a real wire.  A finite transmit queue drops
// excess frames, which lets tests exercise UDP loss behaviour.

#ifndef SRC_HW_LINK_H_
#define SRC_HW_LINK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/kern/ctx.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ikdp {

struct LinkParams {
  std::string name = "ether";
  double bandwidth_bps = 10e6 / 8;  // bytes/s on the wire (10 Mbit/s Ethernet)
  SimDuration propagation_delay = Microseconds(50);
  int per_frame_overhead_bytes = 34;  // preamble + MAC header + CRC + gap
  int mtu_bytes = 1480;               // payload per wire fragment
  int tx_queue_frames = 64;           // frames queued beyond the one in flight
};

// A 10 Mbit/s Ethernet segment, the paper-era campus network.
LinkParams EthernetParams();

// A loopback "link": high bandwidth, negligible delay.
LinkParams LoopbackParams();

class NetworkLink {
 public:
  using Deliver = std::function<void(int64_t frame_bytes)>;

  NetworkLink(Simulator* sim, LinkParams params);

  NetworkLink(const NetworkLink&) = delete;
  NetworkLink& operator=(const NetworkLink&) = delete;

  // Transmits a datagram of `payload_bytes` (fragmented into MTU-sized wire
  // frames, each paying the per-frame overhead); `deliver` fires at the
  // receiver once it has fully arrived, `on_sent` (optional) at the sender
  // once it has left the interface.  Returns false (and drops the datagram)
  // if the transmit queue is full.
  IKDP_CTX_ANY bool Send(int64_t payload_bytes, Deliver deliver,
                         std::function<void()> on_sent = nullptr);

  const LinkParams& params() const { return params_; }
  bool Idle() const { return !busy_ && queued_ == 0; }

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_dropped = 0;
    int64_t payload_bytes = 0;
    SimDuration busy_time = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Frame {
    int64_t payload_bytes;
    Deliver deliver;
    std::function<void()> on_sent;
  };

  void StartNext();

  Simulator* sim_;
  LinkParams params_;
  std::deque<Frame> queue_;
  int queued_ = 0;
  bool busy_ = false;
  Stats stats_;
};

}  // namespace ikdp

#endif  // SRC_HW_LINK_H_
