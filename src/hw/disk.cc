#include "src/hw/disk.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace ikdp {

DiskParams Rz56Params() {
  DiskParams p;
  p.name = "RZ56";
  p.capacity_bytes = 665ll * 1000 * 1000;
  // 15 data surfaces, 54 sectors/track, 512 B sectors -> ~414 KB/cylinder.
  p.bytes_per_cylinder = 15 * 54 * 512;
  p.min_seek = MillisecondsF(4.0);
  p.avg_seek = Milliseconds(16);
  p.max_seek = Milliseconds(35);
  p.avg_rotational_latency = MillisecondsF(8.3);  // 3600 RPM
  p.media_rate_bps = 1.66e6;
  // The DECstation 5000/200's SII SCSI controller ran asynchronous SCSI at
  // ~1.4 MB/s, which bounds cache-hit bursts well below the drive's
  // electronics.
  p.bus_rate_bps = 1.4e6;
  p.cache_bytes = 64 * 1024;
  p.cache_segments = 1;
  p.controller_overhead = MillisecondsF(1.0);
  return p;
}

DiskParams Rz58Params() {
  DiskParams p;
  p.name = "RZ58";
  p.capacity_bytes = 1380ll * 1000 * 1000;
  p.bytes_per_cylinder = 15 * 85 * 512;
  p.min_seek = MillisecondsF(2.5);
  p.avg_seek = MillisecondsF(12.5);
  p.max_seek = Milliseconds(28);
  p.avg_rotational_latency = MillisecondsF(5.6);  // 5400 RPM
  p.media_rate_bps = 2.7e6;
  // Async SII controller bound (the RZ58 supports 4 MB/s synchronous SCSI,
  // but the 5000/200's controller cannot drive it).
  p.bus_rate_bps = 1.5e6;
  p.cache_bytes = 256 * 1024;
  p.cache_segments = 4;
  p.controller_overhead = MillisecondsF(0.8);
  return p;
}

DiskParams InstantDiskParams() {
  DiskParams p;
  p.name = "INSTANT";
  p.capacity_bytes = 1ll << 30;
  p.bytes_per_cylinder = 1 << 20;
  p.min_seek = 0;
  p.avg_seek = 0;
  p.max_seek = 0;
  p.avg_rotational_latency = 0;
  p.media_rate_bps = 400e6;
  p.bus_rate_bps = 400e6;
  p.cache_bytes = 0;
  p.cache_segments = 1;
  p.controller_overhead = Microseconds(1);
  return p;
}

DiskModel::DiskModel(Simulator* sim, DiskParams params) : sim_(sim), params_(std::move(params)) {}

void DiskModel::SetFaultPlan(const DiskFaultPlan& plan) {
  fault_state_ = plan.Enabled() ? std::make_unique<FaultState>(plan) : nullptr;
}

int DiskModel::EvaluatePlanFault(const DiskRequest& r) {
  if (fault_state_ == nullptr) {
    return 0;
  }
  FaultState& fs = *fault_state_;
  if (fs.plan.permanent && fs.bad_offsets.count(r.offset) > 0) {
    return kErrIo;  // grown defect: the sector stays bad
  }
  const double rate = r.is_read ? fs.plan.read_error_rate : fs.plan.write_error_rate;
  if (rate > 0.0 && fs.rng.NextDouble() < rate) {
    if (fs.plan.permanent) {
      fs.bad_offsets.insert(r.offset);
    }
    return kErrIo;
  }
  if (!r.is_read && fs.plan.write_byte_budget >= 0) {
    if (fs.bytes_written + r.nbytes > fs.plan.write_byte_budget) {
      return kErrNoSpc;  // budget exhausted: device full
    }
    fs.bytes_written += r.nbytes;
  }
  return 0;
}

void DiskModel::Submit(DiskRequest req) {
  assert(req.nbytes > 0);
  assert(req.offset >= 0 && req.offset + req.nbytes <= params_.capacity_bytes);
  queue_.push_back(std::move(req));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, QueueDepth());
  if (!busy_) {
    StartNext();
  }
}

DiskRequest DiskModel::ScheduleNext() {
  assert(!queue_.empty());
  auto pick = queue_.begin();
  if (params_.sched == DiskSched::kCLook && queue_.size() > 1) {
    ++stats_.queue_sort_passes;
    // Circular LOOK: the lowest queued offset at or beyond the sweep
    // position; when the sweep has passed everything, wrap to the lowest
    // offset overall.  Ties keep arrival order (strict <).
    auto ahead = queue_.end();
    auto wrap = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->offset >= sweep_pos_) {
        if (ahead == queue_.end() || it->offset < ahead->offset) {
          ahead = it;
        }
      } else if (wrap == queue_.end() || it->offset < wrap->offset) {
        wrap = it;
      }
    }
    if (ahead != queue_.end()) {
      pick = ahead;
    } else {
      pick = wrap;
      if (trace_ != nullptr) {
        trace_->Record(sim_->Now(), TraceKind::kDiskSweepWrap, wrap->offset, sweep_pos_,
                       params_.name.c_str());
      }
    }
  }
  DiskRequest req = std::move(*pick);
  queue_.erase(pick);
  return req;
}

void DiskModel::Coalesce(std::vector<DiskRequest>* batch) {
  if (params_.max_coalesce_bytes <= 0) {
    return;
  }
  int64_t total = batch->front().nbytes;
  int64_t end = batch->front().offset + total;
  const bool is_read = batch->front().is_read;
  bool merged = true;
  while (merged && total < params_.max_coalesce_bytes) {
    merged = false;
    if (params_.sched == DiskSched::kFifo) {
      // FIFO compatibility: only a run at the queue front may merge, so
      // completion order stays exactly arrival order.
      if (!queue_.empty() && queue_.front().is_read == is_read &&
          queue_.front().offset == end) {
        batch->push_back(std::move(queue_.front()));
        queue_.pop_front();
        merged = true;
      }
    } else {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->is_read == is_read && it->offset == end) {
          batch->push_back(std::move(*it));
          queue_.erase(it);
          merged = true;
          break;
        }
      }
    }
    if (merged) {
      const int64_t n = batch->back().nbytes;
      total += n;
      end += n;
      ++stats_.coalesced;
      if (trace_ != nullptr) {
        // The record belongs to the request being merged in, not to whoever
        // happens to be running when the batch forms.
        KspanScope scope("disk", batch->back().span);
        trace_->Record(sim_->Now(), TraceKind::kDiskCoalesce, transfer_serial_, n,
                       params_.name.c_str());
      }
    }
  }
}

void DiskModel::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  ++transfer_serial_;  // before Coalesce so its records carry this serial
  std::vector<DiskRequest> batch;
  batch.push_back(ScheduleNext());
  Coalesce(&batch);

  int64_t total = 0;
  const bool is_read = batch.front().is_read;
  struct Done {
    std::function<void(bool)> cb;
    int error;
    SpanId span;
  };
  std::vector<Done> dones;
  dones.reserve(batch.size());
  for (DiskRequest& r : batch) {
    total += r.nbytes;
    if (r.is_read) {
      ++stats_.reads;
      stats_.bytes_read += r.nbytes;
    } else {
      ++stats_.writes;
      stats_.bytes_written += r.nbytes;
    }
    int error = 0;
    if (fault_hook_ && fault_hook_(r.offset, r.is_read)) {
      error = kErrIo;
    } else {
      error = EvaluatePlanFault(r);
    }
    if (error != 0) {
      ++stats_.errors;
      if (error == kErrNoSpc) {
        ++stats_.enospc_errors;
      } else if (fault_state_ != nullptr && fault_state_->plan.permanent) {
        ++stats_.faults_permanent;
      } else {
        // Hook-injected faults have no permanence semantics; they count as
        // transient alongside plan errors in transient mode.
        ++stats_.faults_transient;
      }
    }
    dones.push_back({std::move(r.done), error, r.span});
  }
  sweep_pos_ = batch.front().offset + total;

  SimDuration service = ServiceTime(batch.front().offset, total, is_read);
  if (fault_state_ != nullptr && fault_state_->plan.spike_rate > 0.0 &&
      fault_state_->rng.NextDouble() < fault_state_->plan.spike_rate) {
    // One draw per physical transfer: the whole batch stalls together, as a
    // firmware-level retry or recalibration would stall it.
    service += fault_state_->plan.spike_delay;
    ++stats_.latency_spikes;
  }
  stats_.busy_time += service;
  const int64_t serial = transfer_serial_;
  // A merged transfer's dispatch/complete records carry the head request's
  // span; each per-request completion callback runs under its own.
  const SpanId head_span = dones.front().span;
  if (trace_ != nullptr) {
    KspanScope scope("disk", head_span);
    trace_->Record(sim_->Now(), TraceKind::kDiskDispatch, serial, total, params_.name.c_str());
  }
  sim_->After(service, [this, serial, total, head_span, dones = std::move(dones)]() mutable {
    if (trace_ != nullptr) {
      KspanScope scope("disk", head_span);
      trace_->Record(sim_->Now(), TraceKind::kDiskComplete, serial, total, params_.name.c_str());
    }
    for (Done& d : dones) {
      last_error_ = d.error;
      if (d.cb) {
        KspanScope scope("disk", d.span);
        d.cb(d.error == 0);
      }
    }
    StartNext();
  });
}

SimDuration DiskModel::SeekTime(int64_t from_cyl, int64_t to_cyl) {
  const int64_t dist = std::abs(to_cyl - from_cyl);
  if (dist == 0) {
    return 0;
  }
  ++stats_.seeks;
  const double frac = static_cast<double>(dist) / static_cast<double>(params_.Cylinders());
  const double span = static_cast<double>(params_.max_seek - params_.min_seek);
  return params_.min_seek + static_cast<SimDuration>(span * std::sqrt(frac));
}

int64_t DiskModel::Frontier(const Segment& seg, SimTime now) const {
  const double elapsed = ToSeconds(now - seg.fill_start_time);
  const int64_t filled =
      seg.fill_start_pos + static_cast<int64_t>(elapsed * params_.media_rate_bps);
  return std::min(filled, seg.limit);
}

DiskModel::Segment* DiskModel::FindSegment(int64_t offset, int64_t nbytes) {
  for (auto it = segments_.begin(); it != segments_.end(); ++it) {
    if (offset >= it->start && offset + nbytes <= it->limit) {
      // Move to front (most recently used).
      segments_.splice(segments_.begin(), segments_, it);
      return &segments_.front();
    }
  }
  return nullptr;
}

void DiskModel::StartSegment(int64_t pos, SimTime t) {
  const int64_t seg_bytes = params_.SegmentBytes();
  if (seg_bytes <= 0) {
    return;
  }
  Segment seg;
  seg.start = pos;
  seg.limit = std::min(pos + seg_bytes, params_.capacity_bytes);
  seg.fill_start_pos = pos;
  seg.fill_start_time = t;
  segments_.push_front(seg);
  while (static_cast<int>(segments_.size()) > params_.cache_segments) {
    segments_.pop_back();
  }
}

SimDuration DiskModel::ServiceTime(int64_t offset, int64_t nbytes, bool is_read) {
  const SimTime now = sim_->Now();
  SimDuration t = params_.controller_overhead;

  if (is_read) {
    if (Segment* seg = FindSegment(offset, nbytes)) {
      // Cache segment hit.  Wait for the background prefetch to cover the
      // transfer, then burst it over the bus.
      ++stats_.read_cache_hits;
      const int64_t frontier = Frontier(*seg, now);
      const int64_t need_end = offset + nbytes;
      if (need_end > frontier) {
        t += TransferTime(need_end - frontier, params_.media_rate_bps);
      }
      t += TransferTime(nbytes, params_.bus_rate_bps);
      return t;
    }
  }

  // Media access: seek + rotation + transfer.
  const int64_t cyl = params_.bytes_per_cylinder > 0 ? offset / params_.bytes_per_cylinder : 0;
  t += SeekTime(head_cylinder_, cyl);
  head_cylinder_ = cyl;
  if (offset != last_end_offset_) {
    t += params_.avg_rotational_latency;
  }
  t += TransferTime(nbytes, params_.media_rate_bps);
  last_end_offset_ = offset + nbytes;

  if (is_read) {
    // The drive keeps prefetching past the transfer into a cache segment.
    StartSegment(offset + nbytes, now + t);
  } else {
    // A write through a region invalidates overlapping read-ahead state.
    for (auto it = segments_.begin(); it != segments_.end();) {
      const bool overlap = offset < it->limit && offset + nbytes > it->start;
      it = overlap ? segments_.erase(it) : std::next(it);
    }
  }
  return t;
}

}  // namespace ikdp
