#include "src/hw/link.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <utility>

namespace ikdp {

LinkParams EthernetParams() {
  LinkParams p;
  p.name = "ether10";
  p.bandwidth_bps = 10e6 / 8;  // 10 Mbit/s expressed in bytes/s
  p.propagation_delay = Microseconds(50);
  p.per_frame_overhead_bytes = 34;
  p.tx_queue_frames = 64;
  return p;
}

LinkParams LoopbackParams() {
  LinkParams p;
  p.name = "lo0";
  p.bandwidth_bps = 400e6;
  p.propagation_delay = Microseconds(1);
  p.per_frame_overhead_bytes = 0;
  p.mtu_bytes = 1 << 20;
  p.tx_queue_frames = 256;
  return p;
}

NetworkLink::NetworkLink(Simulator* sim, LinkParams params)
    : sim_(sim), params_(std::move(params)) {}

bool NetworkLink::Send(int64_t payload_bytes, Deliver deliver, std::function<void()> on_sent) {
  assert(payload_bytes >= 0);
  if (queued_ >= params_.tx_queue_frames) {
    ++stats_.frames_dropped;
    return false;
  }
  queue_.push_back(Frame{payload_bytes, std::move(deliver), std::move(on_sent)});
  ++queued_;
  if (!busy_) {
    StartNext();
  }
  return true;
}

void NetworkLink::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Frame frame = std::move(queue_.front());
  queue_.pop_front();
  --queued_;
  const int64_t fragments = std::max<int64_t>(
      1, (frame.payload_bytes + params_.mtu_bytes - 1) / params_.mtu_bytes);
  const int64_t wire_bytes =
      frame.payload_bytes + fragments * params_.per_frame_overhead_bytes;
  const SimDuration tx = TransferTime(wire_bytes, params_.bandwidth_bps);
  stats_.busy_time += tx;
  ++stats_.frames_sent;
  stats_.payload_bytes += frame.payload_bytes;
  // Fault plan: the sender's interface always does its job (on_sent fires,
  // the wire stays busy for `tx`), but the delivery may be lost outright or
  // stretched by jitter — UDP loss semantics, invisible to the transmitter.
  bool lost = false;
  SimDuration jitter = 0;
  if (fault_state_ != nullptr) {
    FaultState& fs = *fault_state_;
    if (fs.plan.loss_rate > 0.0 && fs.rng.NextDouble() < fs.plan.loss_rate) {
      lost = true;
      ++stats_.frames_lost;
    } else if (fs.plan.jitter_rate > 0.0 && fs.plan.jitter_max > 0 &&
               fs.rng.NextDouble() < fs.plan.jitter_rate) {
      jitter = static_cast<SimDuration>(fs.rng.Below(
          static_cast<uint64_t>(fs.plan.jitter_max) + 1));
      ++stats_.frames_jittered;
    }
  }
  // The transmitter frees after `tx`; the receiver sees the datagram after
  // `tx + propagation` (+ any injected jitter), or never.
  sim_->After(tx, [this, on_sent = std::move(frame.on_sent)] {
    if (on_sent) {
      on_sent();
    }
    StartNext();
  });
  if (!lost) {
    sim_->After(tx + params_.propagation_delay + jitter,
                [deliver = std::move(frame.deliver), bytes = frame.payload_bytes] {
                  if (deliver) {
                    deliver(bytes);
                  }
                });
  }
}

}  // namespace ikdp
