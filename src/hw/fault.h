// Deterministic fault injection for the simulated hardware.
//
// The paper's evaluation runs on a friendly machine: devices never error
// mid-transfer and the wire never loses a frame.  Real kernels earn their
// keep on the bad days, so the disk and link models accept a *fault plan* —
// probabilistic error rates, latency spikes, transient-vs-permanent media
// errors, disk-full on write, frame loss and delivery jitter — seeded from
// its own Rng so every run is exactly reproducible.
//
// Determinism contract: with no plan installed (the default) the models draw
// ZERO random numbers and execute the exact pre-fault code paths, so the
// paper tables stay byte-identical (perturb_tables checks this across
// seeds).  With a plan installed, outcomes are a pure function of the seed
// and the request sequence.
//
// Error identity rides an errno (kErrIo / kErrNoSpc) from the device
// through biodone() and the buffer cache into the splice engine and the
// ring's CQEs — see docs/faults.md for the layer-by-layer propagation map.

#ifndef SRC_HW_FAULT_H_
#define SRC_HW_FAULT_H_

#include <cstdint>

#include "src/sim/time.h"

namespace ikdp {

// Errno values originated by the hardware models (positive, classic UNIX
// numbering; the aio layer's kAioEIo aliases kErrIo).
inline constexpr int kErrIo = 5;      // EIO: unrecoverable media/transfer error
inline constexpr int kErrInval = 22;  // EINVAL: endpoint refuses the operation
inline constexpr int kErrNoSpc = 28;  // ENOSPC: write beyond the byte budget

// Per-device fault plan for DiskModel.  All knobs default to "off"; a plan
// with every knob off is treated as absent (no RNG draws).
struct DiskFaultPlan {
  // Probability that a given read/write request fails with kErrIo.  The
  // error is detected after the request's full service time, as a real
  // media error is (the heads have to get there first).
  double read_error_rate = 0.0;
  double write_error_rate = 0.0;

  // When true, a failed offset stays bad: every later request touching the
  // same offset fails too (grown-defect behaviour).  When false, errors are
  // transient — the next access succeeds.
  bool permanent = false;

  // Probability that a transfer takes `spike_delay` longer than the model
  // says (thermal recalibration, retry at the firmware level).
  double spike_rate = 0.0;
  SimDuration spike_delay = 0;

  // When >= 0, total bytes of successful writes allowed; every write beyond
  // the budget fails with kErrNoSpc (disk-full).
  int64_t write_byte_budget = -1;

  uint64_t seed = 1;

  bool Enabled() const {
    return read_error_rate > 0.0 || write_error_rate > 0.0 || spike_rate > 0.0 ||
           write_byte_budget >= 0;
  }
};

// Fault plan for NetworkLink.
struct LinkFaultPlan {
  // Probability that a transmitted frame never reaches the receiver.  The
  // sender cannot tell: on_sent fires normally (the interface did its job),
  // only the delivery is dropped — UDP loss semantics.
  double loss_rate = 0.0;

  // Probability that a delivered frame's propagation is stretched by a
  // uniform extra delay in [0, jitter_max].
  double jitter_rate = 0.0;
  SimDuration jitter_max = 0;

  uint64_t seed = 1;

  bool Enabled() const {
    return loss_rate > 0.0 || (jitter_rate > 0.0 && jitter_max > 0);
  }
};

}  // namespace ikdp

#endif  // SRC_HW_FAULT_H_
