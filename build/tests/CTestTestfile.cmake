# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/buf_test[1]_include.cmake")
include("/root/repo/build/tests/dev_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/splice_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/splice_property_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/pipe_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
