# Empty compiler generated dependencies file for splice_property_test.
# This may be replaced when dependencies are built.
