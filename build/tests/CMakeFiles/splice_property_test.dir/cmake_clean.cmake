file(REMOVE_RECURSE
  "CMakeFiles/splice_property_test.dir/splice_property_test.cc.o"
  "CMakeFiles/splice_property_test.dir/splice_property_test.cc.o.d"
  "splice_property_test"
  "splice_property_test.pdb"
  "splice_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
