file(REMOVE_RECURSE
  "CMakeFiles/pipe_test.dir/pipe_test.cc.o"
  "CMakeFiles/pipe_test.dir/pipe_test.cc.o.d"
  "pipe_test"
  "pipe_test.pdb"
  "pipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
