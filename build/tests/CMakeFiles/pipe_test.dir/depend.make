# Empty dependencies file for pipe_test.
# This may be replaced when dependencies are built.
