# Empty dependencies file for splice_test.
# This may be replaced when dependencies are built.
