file(REMOVE_RECURSE
  "CMakeFiles/splice_test.dir/splice_test.cc.o"
  "CMakeFiles/splice_test.dir/splice_test.cc.o.d"
  "splice_test"
  "splice_test.pdb"
  "splice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
