file(REMOVE_RECURSE
  "CMakeFiles/invariant_test.dir/invariant_test.cc.o"
  "CMakeFiles/invariant_test.dir/invariant_test.cc.o.d"
  "invariant_test"
  "invariant_test.pdb"
  "invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
