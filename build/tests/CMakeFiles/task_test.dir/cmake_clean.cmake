file(REMOVE_RECURSE
  "CMakeFiles/task_test.dir/task_test.cc.o"
  "CMakeFiles/task_test.dir/task_test.cc.o.d"
  "task_test"
  "task_test.pdb"
  "task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
