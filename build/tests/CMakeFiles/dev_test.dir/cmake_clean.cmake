file(REMOVE_RECURSE
  "CMakeFiles/dev_test.dir/dev_test.cc.o"
  "CMakeFiles/dev_test.dir/dev_test.cc.o.d"
  "dev_test"
  "dev_test.pdb"
  "dev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
