# Empty compiler generated dependencies file for dev_test.
# This may be replaced when dependencies are built.
