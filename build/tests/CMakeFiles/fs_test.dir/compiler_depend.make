# Empty compiler generated dependencies file for fs_test.
# This may be replaced when dependencies are built.
