file(REMOVE_RECURSE
  "CMakeFiles/buf_test.dir/buf_test.cc.o"
  "CMakeFiles/buf_test.dir/buf_test.cc.o.d"
  "buf_test"
  "buf_test.pdb"
  "buf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
