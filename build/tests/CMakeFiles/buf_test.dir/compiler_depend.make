# Empty compiler generated dependencies file for buf_test.
# This may be replaced when dependencies are built.
