# Empty dependencies file for ablate_filesize.
# This may be replaced when dependencies are built.
