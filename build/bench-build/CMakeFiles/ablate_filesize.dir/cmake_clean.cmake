file(REMOVE_RECURSE
  "../bench/ablate_filesize"
  "../bench/ablate_filesize.pdb"
  "CMakeFiles/ablate_filesize.dir/ablate_filesize.cc.o"
  "CMakeFiles/ablate_filesize.dir/ablate_filesize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
