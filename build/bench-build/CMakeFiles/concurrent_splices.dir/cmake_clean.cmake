file(REMOVE_RECURSE
  "../bench/concurrent_splices"
  "../bench/concurrent_splices.pdb"
  "CMakeFiles/concurrent_splices.dir/concurrent_splices.cc.o"
  "CMakeFiles/concurrent_splices.dir/concurrent_splices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_splices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
