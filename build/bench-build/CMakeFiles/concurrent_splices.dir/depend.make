# Empty dependencies file for concurrent_splices.
# This may be replaced when dependencies are built.
