# Empty dependencies file for table2_throughput.
# This may be replaced when dependencies are built.
