file(REMOVE_RECURSE
  "../bench/table2_throughput"
  "../bench/table2_throughput.pdb"
  "CMakeFiles/table2_throughput.dir/table2_throughput.cc.o"
  "CMakeFiles/table2_throughput.dir/table2_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
