
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_throughput.cc" "bench-build/CMakeFiles/table2_throughput.dir/table2_throughput.cc.o" "gcc" "bench-build/CMakeFiles/table2_throughput.dir/table2_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/ikdp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ikdp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ikdp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/ikdp_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/ikdp_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/ikdp_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/splice/CMakeFiles/ikdp_splice.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/ikdp_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ikdp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/buf/CMakeFiles/ikdp_buf.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/ikdp_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ikdp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ikdp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
