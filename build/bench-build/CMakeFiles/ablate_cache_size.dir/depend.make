# Empty dependencies file for ablate_cache_size.
# This may be replaced when dependencies are built.
