file(REMOVE_RECURSE
  "../bench/ablate_cache_size"
  "../bench/ablate_cache_size.pdb"
  "CMakeFiles/ablate_cache_size.dir/ablate_cache_size.cc.o"
  "CMakeFiles/ablate_cache_size.dir/ablate_cache_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
