# Empty compiler generated dependencies file for ablate_callout.
# This may be replaced when dependencies are built.
