file(REMOVE_RECURSE
  "../bench/ablate_callout"
  "../bench/ablate_callout.pdb"
  "CMakeFiles/ablate_callout.dir/ablate_callout.cc.o"
  "CMakeFiles/ablate_callout.dir/ablate_callout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_callout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
