file(REMOVE_RECURSE
  "../bench/ablate_zero_copy"
  "../bench/ablate_zero_copy.pdb"
  "CMakeFiles/ablate_zero_copy.dir/ablate_zero_copy.cc.o"
  "CMakeFiles/ablate_zero_copy.dir/ablate_zero_copy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_zero_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
