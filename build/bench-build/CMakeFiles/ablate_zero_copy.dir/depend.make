# Empty dependencies file for ablate_zero_copy.
# This may be replaced when dependencies are built.
