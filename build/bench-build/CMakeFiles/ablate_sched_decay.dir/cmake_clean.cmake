file(REMOVE_RECURSE
  "../bench/ablate_sched_decay"
  "../bench/ablate_sched_decay.pdb"
  "CMakeFiles/ablate_sched_decay.dir/ablate_sched_decay.cc.o"
  "CMakeFiles/ablate_sched_decay.dir/ablate_sched_decay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sched_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
