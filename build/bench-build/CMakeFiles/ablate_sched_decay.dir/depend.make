# Empty dependencies file for ablate_sched_decay.
# This may be replaced when dependencies are built.
