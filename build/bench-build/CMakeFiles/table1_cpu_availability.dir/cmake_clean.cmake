file(REMOVE_RECURSE
  "../bench/table1_cpu_availability"
  "../bench/table1_cpu_availability.pdb"
  "CMakeFiles/table1_cpu_availability.dir/table1_cpu_availability.cc.o"
  "CMakeFiles/table1_cpu_availability.dir/table1_cpu_availability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cpu_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
