# Empty compiler generated dependencies file for table1_cpu_availability.
# This may be replaced when dependencies are built.
