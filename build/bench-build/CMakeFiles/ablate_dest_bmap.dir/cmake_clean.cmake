file(REMOVE_RECURSE
  "../bench/ablate_dest_bmap"
  "../bench/ablate_dest_bmap.pdb"
  "CMakeFiles/ablate_dest_bmap.dir/ablate_dest_bmap.cc.o"
  "CMakeFiles/ablate_dest_bmap.dir/ablate_dest_bmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dest_bmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
