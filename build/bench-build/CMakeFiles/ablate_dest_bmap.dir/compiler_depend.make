# Empty compiler generated dependencies file for ablate_dest_bmap.
# This may be replaced when dependencies are built.
