file(REMOVE_RECURSE
  "../bench/ablate_readahead"
  "../bench/ablate_readahead.pdb"
  "CMakeFiles/ablate_readahead.dir/ablate_readahead.cc.o"
  "CMakeFiles/ablate_readahead.dir/ablate_readahead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
