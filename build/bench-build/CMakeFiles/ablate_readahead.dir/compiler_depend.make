# Empty compiler generated dependencies file for ablate_readahead.
# This may be replaced when dependencies are built.
