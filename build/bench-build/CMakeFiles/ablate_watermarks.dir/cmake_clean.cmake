file(REMOVE_RECURSE
  "../bench/ablate_watermarks"
  "../bench/ablate_watermarks.pdb"
  "CMakeFiles/ablate_watermarks.dir/ablate_watermarks.cc.o"
  "CMakeFiles/ablate_watermarks.dir/ablate_watermarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_watermarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
