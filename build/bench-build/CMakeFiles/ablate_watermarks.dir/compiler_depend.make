# Empty compiler generated dependencies file for ablate_watermarks.
# This may be replaced when dependencies are built.
