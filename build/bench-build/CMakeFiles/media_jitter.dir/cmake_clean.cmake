file(REMOVE_RECURSE
  "../bench/media_jitter"
  "../bench/media_jitter.pdb"
  "CMakeFiles/media_jitter.dir/media_jitter.cc.o"
  "CMakeFiles/media_jitter.dir/media_jitter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
