# Empty compiler generated dependencies file for media_jitter.
# This may be replaced when dependencies are built.
