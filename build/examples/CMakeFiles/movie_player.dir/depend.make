# Empty dependencies file for movie_player.
# This may be replaced when dependencies are built.
