file(REMOVE_RECURSE
  "CMakeFiles/movie_player.dir/movie_player.cpp.o"
  "CMakeFiles/movie_player.dir/movie_player.cpp.o.d"
  "movie_player"
  "movie_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
