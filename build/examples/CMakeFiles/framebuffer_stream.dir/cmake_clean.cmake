file(REMOVE_RECURSE
  "CMakeFiles/framebuffer_stream.dir/framebuffer_stream.cpp.o"
  "CMakeFiles/framebuffer_stream.dir/framebuffer_stream.cpp.o.d"
  "framebuffer_stream"
  "framebuffer_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framebuffer_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
