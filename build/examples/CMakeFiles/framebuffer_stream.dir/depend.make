# Empty dependencies file for framebuffer_stream.
# This may be replaced when dependencies are built.
