# Empty dependencies file for udp_relay.
# This may be replaced when dependencies are built.
