file(REMOVE_RECURSE
  "CMakeFiles/udp_relay.dir/udp_relay.cpp.o"
  "CMakeFiles/udp_relay.dir/udp_relay.cpp.o.d"
  "udp_relay"
  "udp_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
