# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_player "/root/repo/build/examples/movie_player")
set_tests_properties(example_movie_player PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_udp_relay "/root/repo/build/examples/udp_relay")
set_tests_properties(example_udp_relay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_framebuffer_stream "/root/repo/build/examples/framebuffer_stream")
set_tests_properties(example_framebuffer_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline")
set_tests_properties(example_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
