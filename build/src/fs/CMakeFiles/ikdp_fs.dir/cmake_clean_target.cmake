file(REMOVE_RECURSE
  "libikdp_fs.a"
)
