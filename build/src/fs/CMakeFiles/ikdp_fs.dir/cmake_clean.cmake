file(REMOVE_RECURSE
  "CMakeFiles/ikdp_fs.dir/filesystem.cc.o"
  "CMakeFiles/ikdp_fs.dir/filesystem.cc.o.d"
  "libikdp_fs.a"
  "libikdp_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
