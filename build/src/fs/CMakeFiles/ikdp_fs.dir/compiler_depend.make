# Empty compiler generated dependencies file for ikdp_fs.
# This may be replaced when dependencies are built.
