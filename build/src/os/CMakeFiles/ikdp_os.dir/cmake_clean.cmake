file(REMOVE_RECURSE
  "CMakeFiles/ikdp_os.dir/kernel.cc.o"
  "CMakeFiles/ikdp_os.dir/kernel.cc.o.d"
  "libikdp_os.a"
  "libikdp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
