file(REMOVE_RECURSE
  "libikdp_os.a"
)
