# Empty dependencies file for ikdp_os.
# This may be replaced when dependencies are built.
