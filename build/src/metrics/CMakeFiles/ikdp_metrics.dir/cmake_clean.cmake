file(REMOVE_RECURSE
  "CMakeFiles/ikdp_metrics.dir/experiment.cc.o"
  "CMakeFiles/ikdp_metrics.dir/experiment.cc.o.d"
  "CMakeFiles/ikdp_metrics.dir/report.cc.o"
  "CMakeFiles/ikdp_metrics.dir/report.cc.o.d"
  "CMakeFiles/ikdp_metrics.dir/tables.cc.o"
  "CMakeFiles/ikdp_metrics.dir/tables.cc.o.d"
  "libikdp_metrics.a"
  "libikdp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
