file(REMOVE_RECURSE
  "libikdp_metrics.a"
)
