# Empty dependencies file for ikdp_metrics.
# This may be replaced when dependencies are built.
