file(REMOVE_RECURSE
  "CMakeFiles/ikdp_workload.dir/programs.cc.o"
  "CMakeFiles/ikdp_workload.dir/programs.cc.o.d"
  "libikdp_workload.a"
  "libikdp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
