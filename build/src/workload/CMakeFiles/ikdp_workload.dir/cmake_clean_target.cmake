file(REMOVE_RECURSE
  "libikdp_workload.a"
)
