# Empty compiler generated dependencies file for ikdp_workload.
# This may be replaced when dependencies are built.
