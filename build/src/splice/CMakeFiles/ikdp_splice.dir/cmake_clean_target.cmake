file(REMOVE_RECURSE
  "libikdp_splice.a"
)
