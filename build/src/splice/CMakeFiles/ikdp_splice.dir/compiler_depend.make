# Empty compiler generated dependencies file for ikdp_splice.
# This may be replaced when dependencies are built.
