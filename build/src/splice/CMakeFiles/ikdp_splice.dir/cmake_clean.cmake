file(REMOVE_RECURSE
  "CMakeFiles/ikdp_splice.dir/file_endpoint.cc.o"
  "CMakeFiles/ikdp_splice.dir/file_endpoint.cc.o.d"
  "CMakeFiles/ikdp_splice.dir/splice_engine.cc.o"
  "CMakeFiles/ikdp_splice.dir/splice_engine.cc.o.d"
  "CMakeFiles/ikdp_splice.dir/stream_endpoint.cc.o"
  "CMakeFiles/ikdp_splice.dir/stream_endpoint.cc.o.d"
  "libikdp_splice.a"
  "libikdp_splice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_splice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
