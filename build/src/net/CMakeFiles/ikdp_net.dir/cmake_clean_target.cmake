file(REMOVE_RECURSE
  "libikdp_net.a"
)
