# Empty dependencies file for ikdp_net.
# This may be replaced when dependencies are built.
