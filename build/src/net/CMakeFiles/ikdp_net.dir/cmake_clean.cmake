file(REMOVE_RECURSE
  "CMakeFiles/ikdp_net.dir/udp_socket.cc.o"
  "CMakeFiles/ikdp_net.dir/udp_socket.cc.o.d"
  "libikdp_net.a"
  "libikdp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
