# Empty dependencies file for ikdp_hw.
# This may be replaced when dependencies are built.
