file(REMOVE_RECURSE
  "libikdp_hw.a"
)
