file(REMOVE_RECURSE
  "CMakeFiles/ikdp_hw.dir/disk.cc.o"
  "CMakeFiles/ikdp_hw.dir/disk.cc.o.d"
  "CMakeFiles/ikdp_hw.dir/link.cc.o"
  "CMakeFiles/ikdp_hw.dir/link.cc.o.d"
  "libikdp_hw.a"
  "libikdp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
