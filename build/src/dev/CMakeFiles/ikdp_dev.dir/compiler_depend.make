# Empty compiler generated dependencies file for ikdp_dev.
# This may be replaced when dependencies are built.
