file(REMOVE_RECURSE
  "libikdp_dev.a"
)
