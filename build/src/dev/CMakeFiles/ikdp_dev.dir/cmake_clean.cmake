file(REMOVE_RECURSE
  "CMakeFiles/ikdp_dev.dir/disk_driver.cc.o"
  "CMakeFiles/ikdp_dev.dir/disk_driver.cc.o.d"
  "CMakeFiles/ikdp_dev.dir/frame_source.cc.o"
  "CMakeFiles/ikdp_dev.dir/frame_source.cc.o.d"
  "CMakeFiles/ikdp_dev.dir/paced_sink.cc.o"
  "CMakeFiles/ikdp_dev.dir/paced_sink.cc.o.d"
  "CMakeFiles/ikdp_dev.dir/ram_disk.cc.o"
  "CMakeFiles/ikdp_dev.dir/ram_disk.cc.o.d"
  "libikdp_dev.a"
  "libikdp_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
