file(REMOVE_RECURSE
  "libikdp_ipc.a"
)
