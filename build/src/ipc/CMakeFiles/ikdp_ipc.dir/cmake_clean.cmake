file(REMOVE_RECURSE
  "CMakeFiles/ikdp_ipc.dir/pipe.cc.o"
  "CMakeFiles/ikdp_ipc.dir/pipe.cc.o.d"
  "libikdp_ipc.a"
  "libikdp_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
