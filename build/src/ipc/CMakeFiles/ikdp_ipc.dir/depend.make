# Empty dependencies file for ikdp_ipc.
# This may be replaced when dependencies are built.
