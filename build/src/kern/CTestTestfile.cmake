# CMake generated Testfile for 
# Source directory: /root/repo/src/kern
# Build directory: /root/repo/build/src/kern
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
