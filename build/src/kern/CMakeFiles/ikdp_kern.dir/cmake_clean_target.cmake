file(REMOVE_RECURSE
  "libikdp_kern.a"
)
