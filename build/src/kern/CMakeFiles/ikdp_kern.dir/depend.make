# Empty dependencies file for ikdp_kern.
# This may be replaced when dependencies are built.
