file(REMOVE_RECURSE
  "CMakeFiles/ikdp_kern.dir/cpu.cc.o"
  "CMakeFiles/ikdp_kern.dir/cpu.cc.o.d"
  "libikdp_kern.a"
  "libikdp_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
