# Empty dependencies file for ikdp_buf.
# This may be replaced when dependencies are built.
