file(REMOVE_RECURSE
  "CMakeFiles/ikdp_buf.dir/buffer_cache.cc.o"
  "CMakeFiles/ikdp_buf.dir/buffer_cache.cc.o.d"
  "libikdp_buf.a"
  "libikdp_buf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_buf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
