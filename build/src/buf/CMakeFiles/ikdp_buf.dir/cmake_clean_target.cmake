file(REMOVE_RECURSE
  "libikdp_buf.a"
)
