# Empty dependencies file for ikdp_vfs.
# This may be replaced when dependencies are built.
