file(REMOVE_RECURSE
  "libikdp_vfs.a"
)
