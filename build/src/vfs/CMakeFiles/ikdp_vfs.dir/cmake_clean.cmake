file(REMOVE_RECURSE
  "CMakeFiles/ikdp_vfs.dir/file.cc.o"
  "CMakeFiles/ikdp_vfs.dir/file.cc.o.d"
  "libikdp_vfs.a"
  "libikdp_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
