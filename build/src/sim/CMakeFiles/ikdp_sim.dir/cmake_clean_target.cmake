file(REMOVE_RECURSE
  "libikdp_sim.a"
)
