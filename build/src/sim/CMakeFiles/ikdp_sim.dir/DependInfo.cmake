
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/callout.cc" "src/sim/CMakeFiles/ikdp_sim.dir/callout.cc.o" "gcc" "src/sim/CMakeFiles/ikdp_sim.dir/callout.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/ikdp_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/ikdp_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/ikdp_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/ikdp_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/sim/CMakeFiles/ikdp_sim.dir/time.cc.o" "gcc" "src/sim/CMakeFiles/ikdp_sim.dir/time.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/ikdp_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/ikdp_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
