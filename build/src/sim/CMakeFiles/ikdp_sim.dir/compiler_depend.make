# Empty compiler generated dependencies file for ikdp_sim.
# This may be replaced when dependencies are built.
