file(REMOVE_RECURSE
  "CMakeFiles/ikdp_sim.dir/callout.cc.o"
  "CMakeFiles/ikdp_sim.dir/callout.cc.o.d"
  "CMakeFiles/ikdp_sim.dir/event_queue.cc.o"
  "CMakeFiles/ikdp_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ikdp_sim.dir/simulator.cc.o"
  "CMakeFiles/ikdp_sim.dir/simulator.cc.o.d"
  "CMakeFiles/ikdp_sim.dir/time.cc.o"
  "CMakeFiles/ikdp_sim.dir/time.cc.o.d"
  "CMakeFiles/ikdp_sim.dir/trace.cc.o"
  "CMakeFiles/ikdp_sim.dir/trace.cc.o.d"
  "libikdp_sim.a"
  "libikdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikdp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
